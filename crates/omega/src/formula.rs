//! A Presburger-formula layer on top of conjunctions (§3.2).
//!
//! Formulas are built from linear atoms over a shared variable space with
//! `∧`, `∨`, `¬`, `∃` and `∀`. Validity and satisfiability are decided by
//! rewriting to disjunctive normal form, using the Omega test's projection
//! for existential quantifiers (splinters become extra disjuncts).
//!
//! The paper deliberately does not characterize the subclass it decides
//! efficiently; the same is true here — deeply alternating quantifiers can
//! blow up in DNF size, but the shapes dependence analysis needs
//! (`∀x. p ⇒ ∃y. q`) stay small.

use crate::linexpr::{Constraint, LinExpr, Relation};
use crate::problem::{Budget, Problem};
use crate::redundant::negate_geq;
use crate::var::{VarId, VarKind};
use crate::Result;

/// A formula of Presburger arithmetic over a fixed variable space.
///
/// The space is supplied when the formula is evaluated (see
/// [`Formula::dnf`]); atoms carry constraints whose variable ids refer to
/// that space.
#[derive(Debug, Clone)]
pub enum Formula {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// A single linear constraint.
    Atom(Constraint),
    /// Divisibility: `g | expr` (equivalently `∃α. expr = g·α`).
    ///
    /// First-class so that negation stays decidable:
    /// `¬(g | e) ≡ ∃α,ρ. e = g·α + ρ ∧ 1 ≤ ρ ≤ g−1`.
    Divides(crate::int::Coef, LinExpr),
    /// Non-divisibility: `g ∤ expr`.
    NotDivides(crate::int::Coef, LinExpr),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Existential quantification of the listed variables.
    Exists(Vec<VarId>, Box<Formula>),
    /// Universal quantification of the listed variables.
    Forall(Vec<VarId>, Box<Formula>),
}

impl Formula {
    /// The atom `expr == 0`.
    pub fn eq0(expr: LinExpr) -> Formula {
        Formula::Atom(Constraint::eq(expr))
    }

    /// The atom `expr >= 0`.
    pub fn geq0(expr: LinExpr) -> Formula {
        Formula::Atom(Constraint::geq(expr))
    }

    /// Conjunction of the given formulas.
    pub fn and(fs: Vec<Formula>) -> Formula {
        Formula::And(fs)
    }

    /// Disjunction of the given formulas.
    pub fn or(fs: Vec<Formula>) -> Formula {
        Formula::Or(fs)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// `∃ vars. f`
    pub fn exists(vars: Vec<VarId>, f: Formula) -> Formula {
        Formula::Exists(vars, Box::new(f))
    }

    /// `∀ vars. f`
    pub fn forall(vars: Vec<VarId>, f: Formula) -> Formula {
        Formula::Forall(vars, Box::new(f))
    }

    /// `self ⇒ other`
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Or(vec![Formula::not(self), other])
    }

    /// Converts a whole problem into a conjunction of atoms.
    ///
    /// A wildcard that appears exactly once, in a single equality, encodes
    /// a stride; such equalities become [`Formula::Divides`] atoms (keeping
    /// negation decidable). Remaining wildcards are wrapped in an
    /// existential.
    pub fn from_problem(p: &Problem) -> Formula {
        if p.is_known_infeasible() {
            return Formula::False;
        }
        // Count wildcard occurrences across all constraints.
        let mut occurrences = vec![0usize; p.num_vars()];
        for c in p.eqs().iter().chain(p.geqs()) {
            for (v, _) in c.expr().terms() {
                occurrences[v.index()] += 1;
            }
        }
        let is_lone_wild = |v: VarId| {
            p.var_info(v).kind() == VarKind::Wildcard && occurrences[v.index()] == 1
        };
        let mut atoms: Vec<Formula> = Vec::new();
        let mut leftover_wilds: std::collections::BTreeSet<VarId> = std::collections::BTreeSet::new();
        for c in p.eqs() {
            // Stride pattern: exactly one lone wildcard in an equality.
            let wilds: Vec<(VarId, crate::int::Coef)> = c
                .expr()
                .terms()
                .filter(|&(v, _)| p.var_info(v).kind() == VarKind::Wildcard)
                .collect();
            if wilds.len() == 1 && is_lone_wild(wilds[0].0) {
                let (w, g) = wilds[0];
                let mut rest = c.expr().clone();
                rest.set_coef(w, 0);
                atoms.push(Formula::Divides(g.abs(), rest));
                continue;
            }
            for (v, _) in &wilds {
                leftover_wilds.insert(*v);
            }
            atoms.push(Formula::Atom(c.clone()));
        }
        for c in p.geqs() {
            for (v, _) in c.expr().terms() {
                if p.var_info(v).kind() == VarKind::Wildcard {
                    leftover_wilds.insert(v);
                }
            }
            atoms.push(Formula::Atom(c.clone()));
        }
        let body = Formula::And(atoms);
        if leftover_wilds.is_empty() {
            body
        } else {
            Formula::Exists(leftover_wilds.into_iter().collect(), Box::new(body))
        }
    }

    /// Rewrites into disjunctive normal form: a union of conjunctions over
    /// the free variables of `space`. Existentials are eliminated by exact
    /// projection; universals by `¬∃¬`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors; may be exponential for deeply alternating
    /// formulas (guarded by `budget`).
    pub fn dnf(&self, space: &Problem, budget: &mut Budget) -> Result<Vec<Problem>> {
        let nnf = self.to_nnf(false);
        nnf.dnf_nnf(space, budget, 0)
    }

    /// Satisfiability over the free variables.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn is_satisfiable(&self, space: &Problem, budget: &mut Budget) -> Result<bool> {
        for d in self.dnf(space, budget)? {
            if d.is_satisfiable_with(budget)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Validity: true for **all** integer values of the free variables.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn is_valid(&self, space: &Problem, budget: &mut Budget) -> Result<bool> {
        Ok(!Formula::not(self.clone()).is_satisfiable(space, budget)?)
    }

    /// Negation normal form. `negate` tracks an odd number of enclosing
    /// negations.
    fn to_nnf(&self, negate: bool) -> Formula {
        match self {
            Formula::True => {
                if negate {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negate {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::Atom(c) => {
                if !negate {
                    Formula::Atom(c.clone())
                } else {
                    match c.relation() {
                        // ¬(e >= 0)  ≡  -e - 1 >= 0
                        Relation::NonNegative => {
                            Formula::Atom(Constraint::geq(negate_geq(c.expr())))
                        }
                        // ¬(e == 0)  ≡  e - 1 >= 0  ∨  -e - 1 >= 0
                        Relation::Zero => {
                            let mut pos = c.expr().clone();
                            pos.add_constant(-1).expect("overflow");
                            Formula::Or(vec![
                                Formula::Atom(Constraint::geq(pos)),
                                Formula::Atom(Constraint::geq(negate_geq(c.expr()))),
                            ])
                        }
                    }
                }
            }
            Formula::Divides(g, e) => {
                if negate {
                    Formula::NotDivides(*g, e.clone())
                } else {
                    Formula::Divides(*g, e.clone())
                }
            }
            Formula::NotDivides(g, e) => {
                if negate {
                    Formula::Divides(*g, e.clone())
                } else {
                    Formula::NotDivides(*g, e.clone())
                }
            }
            Formula::And(fs) => {
                let inner = fs.iter().map(|f| f.to_nnf(negate)).collect();
                if negate {
                    Formula::Or(inner)
                } else {
                    Formula::And(inner)
                }
            }
            Formula::Or(fs) => {
                let inner = fs.iter().map(|f| f.to_nnf(negate)).collect();
                if negate {
                    Formula::And(inner)
                } else {
                    Formula::Or(inner)
                }
            }
            Formula::Not(f) => f.to_nnf(!negate),
            Formula::Exists(vs, f) => {
                let inner = Box::new(f.to_nnf(negate));
                if negate {
                    Formula::Forall(vs.clone(), inner)
                } else {
                    Formula::Exists(vs.clone(), inner)
                }
            }
            Formula::Forall(vs, f) => {
                let inner = Box::new(f.to_nnf(negate));
                if negate {
                    Formula::Exists(vs.clone(), inner)
                } else {
                    Formula::Forall(vs.clone(), inner)
                }
            }
        }
    }

    /// DNF of a formula already in NNF.
    fn dnf_nnf(&self, space: &Problem, budget: &mut Budget, depth: usize) -> Result<Vec<Problem>> {
        if depth > MAX_FORMULA_DEPTH {
            return Err(crate::Error::TooComplex {
                budget: MAX_FORMULA_DEPTH,
            });
        }
        let depth = depth + 1;
        match self {
            Formula::True => Ok(vec![space_copy(space)]),
            Formula::False => Ok(Vec::new()),
            Formula::Atom(c) => {
                let mut p = space_copy(space);
                p.add_constraint(c.clone());
                Ok(vec![p])
            }
            Formula::Divides(g, e) => {
                let g = g.abs();
                let mut p = space_copy(space);
                if g <= 1 {
                    // 1 | e and 0 | e ≡ e = 0 (for g = 0).
                    if g == 0 {
                        p.add_eq(e.clone());
                    }
                    return Ok(vec![p]);
                }
                // ∃α. e − g·α = 0
                let alpha = p.add_wildcard();
                let mut eq = e.clone();
                eq.set_coef(alpha, -g);
                p.add_eq(eq);
                Ok(vec![p])
            }
            Formula::NotDivides(g, e) => {
                let g = g.abs();
                let mut p = space_copy(space);
                if g == 1 {
                    return Ok(Vec::new()); // 1 divides everything
                }
                if g == 0 {
                    // 0 ∤ e ≡ e ≠ 0.
                    return Formula::not(Formula::eq0(e.clone())).to_nnf(false).dnf_nnf(space, budget, depth);
                }
                // ∃α,ρ. e = g·α + ρ ∧ 1 ≤ ρ ≤ g−1
                let alpha = p.add_wildcard();
                let rho = p.add_wildcard();
                let mut eq = e.clone();
                eq.set_coef(alpha, -g);
                eq.set_coef(rho, -1);
                p.add_eq(eq);
                p.add_geq(LinExpr::var(rho).plus_const(-1));
                p.add_geq(LinExpr::term(-1, rho).plus_const(g - 1));
                Ok(vec![p])
            }
            // NNF has no bare negations, but stray ones (e.g. built by
            // callers) are handled by renormalizing.
            Formula::Not(f) => f.to_nnf(true).dnf_nnf(space, budget, depth),
            Formula::Or(fs) => {
                let mut out = Vec::new();
                for f in fs {
                    out.extend(f.dnf_nnf(space, budget, depth)?);
                }
                Ok(out)
            }
            Formula::And(fs) => {
                let mut acc = vec![space_copy(space)];
                for f in fs {
                    let parts = f.dnf_nnf(space, budget, depth)?;
                    let mut next = Vec::new();
                    budget.spend(acc.len() * parts.len())?;
                    for a in &acc {
                        for b in &parts {
                            let mut c = a.clone();
                            c.and(b)?;
                            next.push(c);
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
            Formula::Exists(vs, f) => {
                let inner = f.dnf_nnf(space, budget, depth)?;
                let mut out = Vec::new();
                for p in inner {
                    let keep: Vec<VarId> = p
                        .var_ids()
                        .filter(|v| {
                            !vs.contains(v)
                                && !p.is_dead(*v)
                                && p.var_info(*v).kind() != VarKind::Wildcard
                        })
                        .collect();
                    let proj = p.project_with(&keep, budget)?;
                    for piece in proj.into_problems() {
                        if !piece.is_known_infeasible() {
                            out.push(piece);
                        }
                    }
                }
                Ok(out)
            }
            Formula::Forall(vs, f) => {
                // ∀x.f ≡ ¬∃x.¬f. Compute the DNF of ∃x.¬f (f is already
                // in NNF, so `to_nnf(true)` is its NNF negation), then
                // negate the resulting union: ∧ over pieces of ¬piece.
                let not_f = f.to_nnf(true);
                let pieces =
                    Formula::Exists(vs.clone(), Box::new(not_f)).dnf_nnf(space, budget, depth)?;
                // Projection pieces may carry wildcard columns beyond the
                // original space; widen the table before re-entering DNF.
                let mut wide = space.clone();
                for p in &pieces {
                    wide.extend_space_to(p)?;
                }
                let negation = Formula::And(
                    pieces
                        .iter()
                        .map(|p| Formula::not(Formula::from_problem(p)).to_nnf(false))
                        .collect(),
                );
                negation.dnf_nnf(&wide, budget, depth)
            }
        }
    }
}

/// Recursion guard for deeply alternating formulas.
const MAX_FORMULA_DEPTH: usize = 64;

fn space_copy(space: &Problem) -> Problem {
    let mut p = space.clone();
    p.eqs.clear();
    p.geqs.clear();
    p.known_infeasible = false;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_xy() -> (Problem, VarId, VarId) {
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let y = s.add_var("y", VarKind::Input);
        (s, x, y)
    }

    #[test]
    fn tautology_or() {
        // x >= 0 ∨ x <= 5 is valid.
        let (s, x, _) = space_xy();
        let f = Formula::or(vec![
            Formula::geq0(LinExpr::var(x)),
            Formula::geq0(LinExpr::term(-1, x).plus_const(5)),
        ]);
        let mut b = Budget::default();
        assert!(f.is_valid(&s, &mut b).unwrap());
    }

    #[test]
    fn non_tautology() {
        let (s, x, _) = space_xy();
        let f = Formula::geq0(LinExpr::var(x));
        let mut b = Budget::default();
        assert!(!f.is_valid(&s, &mut b).unwrap());
        assert!(f.is_satisfiable(&s, &mut b).unwrap());
    }

    #[test]
    fn negated_equality_splits() {
        // ¬(x == y) is satisfiable but not valid.
        let (s, x, y) = space_xy();
        let f = Formula::not(Formula::eq0(LinExpr::var(x).plus_term(-1, y)));
        let mut b = Budget::default();
        assert!(f.is_satisfiable(&s, &mut b).unwrap());
        assert!(!f.is_valid(&s, &mut b).unwrap());
    }

    #[test]
    fn exists_projection() {
        // ∃y. (x = 2y): x even. Satisfiable; not valid.
        let (s, x, y) = space_xy();
        let f = Formula::exists(
            vec![y],
            Formula::eq0(LinExpr::var(x).plus_term(-2, y)),
        );
        let mut b = Budget::default();
        assert!(f.is_satisfiable(&s, &mut b).unwrap());
        assert!(!f.is_valid(&s, &mut b).unwrap());
        // ∃y. x = 2y ∨ x = 2y + 1 is valid.
        let g = Formula::exists(
            vec![y],
            Formula::or(vec![
                Formula::eq0(LinExpr::var(x).plus_term(-2, y)),
                Formula::eq0(LinExpr::var(x).plus_term(-2, y).plus_const(-1)),
            ]),
        );
        assert!(g.is_valid(&s, &mut b).unwrap());
    }

    #[test]
    fn forall_exists_shape_from_paper() {
        // ∀x. (∃y. x = y): trivially valid.
        let (s, x, y) = space_xy();
        let f = Formula::forall(
            vec![x],
            Formula::exists(vec![y], Formula::eq0(LinExpr::var(x).plus_term(-1, y))),
        );
        let mut b = Budget::default();
        assert!(f.is_valid(&s, &mut b).unwrap());
    }

    #[test]
    fn implication_shape() {
        // ∀x. (x >= 5 ⇒ x >= 1) valid; converse invalid.
        let (s, x, _) = space_xy();
        let mut b = Budget::default();
        let f = Formula::geq0(LinExpr::var(x).plus_const(-5))
            .implies(Formula::geq0(LinExpr::var(x).plus_const(-1)));
        assert!(f.is_valid(&s, &mut b).unwrap());
        let g = Formula::geq0(LinExpr::var(x).plus_const(-1))
            .implies(Formula::geq0(LinExpr::var(x).plus_const(-5)));
        assert!(!g.is_valid(&s, &mut b).unwrap());
    }

    #[test]
    fn exists_implies_exists() {
        // ∀x. (∃y. 2y = x) ⇒ (∃z. 4z = x ∨ 4z + 2 = x): even numbers are
        // 0 or 2 mod 4 — valid.
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let y = s.add_var("y", VarKind::Input);
        let z = s.add_var("z", VarKind::Input);
        let even = Formula::exists(vec![y], Formula::eq0(LinExpr::var(x).plus_term(-2, y)));
        let mod4 = Formula::exists(
            vec![z],
            Formula::or(vec![
                Formula::eq0(LinExpr::var(x).plus_term(-4, z)),
                Formula::eq0(LinExpr::var(x).plus_term(-4, z).plus_const(-2)),
            ]),
        );
        let mut b = Budget::default();
        assert!(even.implies(mod4).is_valid(&s, &mut b).unwrap());
    }

    #[test]
    fn from_problem_roundtrip() {
        let (s, x, y) = space_xy();
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x).plus_term(-1, y));
        p.add_eq(LinExpr::var(y).plus_const(-3));
        let f = Formula::from_problem(&p);
        let mut b = Budget::default();
        let dnf = f.dnf(&s, &mut b).unwrap();
        assert_eq!(dnf.len(), 1);
        for xv in 0..6 {
            for yv in 0..6 {
                assert_eq!(dnf[0].satisfies(&[xv, yv]), p.satisfies(&[xv, yv]));
            }
        }
    }
}

impl Formula {
    /// Renders the formula with variable names drawn from `space`.
    ///
    /// # Examples
    ///
    /// ```
    /// use omega::{Formula, LinExpr, Problem, VarKind};
    /// let mut s = Problem::new();
    /// let x = s.add_var("x", VarKind::Input);
    /// let y = s.add_var("y", VarKind::Input);
    /// let f = Formula::exists(vec![y], Formula::eq0(LinExpr::var(x).plus_term(-2, y)));
    /// assert_eq!(f.display(&s), "exists y: x - 2y = 0");
    /// ```
    pub fn display(&self, space: &Problem) -> String {
        match self {
            Formula::True => "TRUE".to_string(),
            Formula::False => "FALSE".to_string(),
            Formula::Atom(c) => space.constraint_to_string(c),
            Formula::Divides(g, e) => format!("{g} | ({})", space.expr_to_string(e)),
            Formula::NotDivides(g, e) => {
                format!("not {g} | ({})", space.expr_to_string(e))
            }
            Formula::And(fs) => join_with(fs, space, " and "),
            Formula::Or(fs) => join_with(fs, space, " or "),
            Formula::Not(f) => format!("not ({})", f.display(space)),
            Formula::Exists(vs, f) => {
                format!("exists {}: {}", var_list(vs, space), f.display(space))
            }
            Formula::Forall(vs, f) => {
                format!("forall {}: {}", var_list(vs, space), f.display(space))
            }
        }
    }
}

fn join_with(fs: &[Formula], space: &Problem, sep: &str) -> String {
    if fs.is_empty() {
        return "TRUE".to_string();
    }
    fs.iter()
        .map(|f| {
            let s = f.display(space);
            if matches!(f, Formula::And(_) | Formula::Or(_)) {
                format!("({s})")
            } else {
                s
            }
        })
        .collect::<Vec<_>>()
        .join(sep)
}

fn var_list(vs: &[VarId], space: &Problem) -> String {
    vs.iter()
        .map(|&v| space.var_info(v).name().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn renders_nested_formulas() {
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let y = s.add_var("y", VarKind::Input);
        let f = Formula::forall(
            vec![x],
            Formula::or(vec![
                Formula::geq0(LinExpr::var(x)),
                Formula::exists(vec![y], Formula::eq0(LinExpr::var(x).plus_term(-3, y))),
            ]),
        );
        assert_eq!(
            f.display(&s),
            "forall x: x >= 0 or exists y: x - 3y = 0"
        );
        let d = Formula::Divides(4, LinExpr::var(x).plus_const(1));
        assert_eq!(d.display(&s), "4 | (x + 1)");
    }
}
