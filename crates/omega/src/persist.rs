//! A persistent on-disk form of the [`SolverCache`], so a compiler-server
//! workload re-analyzing the same kernels pays each solve only once
//! across runs.
//!
//! # Format
//!
//! A plain-text, line-oriented, token stream:
//!
//! ```text
//! omega-solver-cache format=1 solver=1
//! B <id> <base canonical form>
//! E <memo key> <cost> <cached value>
//! C <fnv1a64-checksum-of-everything-above>
//! ```
//!
//! The writer is deterministic: interned bases are re-numbered in
//! serialized order and entry lines are sorted, so two caches with the
//! same contents produce byte-identical files regardless of hash-map
//! iteration order. Strings are percent-encoded; numbers are decimal;
//! lists are length-prefixed.
//!
//! # Trust model
//!
//! A cache file is a *hint*, never an authority: any header mismatch
//! (format or solver version bump), parse error, dangling base
//! reference, or checksum failure makes [`SolverCache::load_from`]
//! silently return an **empty** cache — the analysis then simply runs
//! cold and produces the same bytes it always would. The checksum is
//! FNV-1a (hand-rolled: `std`'s hasher is randomized per process, which
//! would break cross-run stability); it guards against truncation and
//! accidental corruption, not against adversarial edits.

use std::path::Path;
use std::sync::Arc;

use crate::cache::{BaseForm, CachedValue, DeltaKey, Entry, MemoKey, SolverCache};
use crate::canon::{CanonKey, Op};
use crate::int::Coef;
use crate::linexpr::{Color, Constraint, LinExpr};
use crate::problem::Problem;
use crate::project::Projection;
use crate::symbol::Name;
use crate::var::{VarId, VarInfo, VarKind};

/// Bumped whenever the serialized layout changes.
const FORMAT_VERSION: u32 = 1;
/// Bumped whenever solver semantics change in a way that invalidates
/// cached verdicts (canonicalization, projection, budget accounting).
const SOLVER_VERSION: u32 = 1;

/// Maximum entries accepted from a file (mirrors the in-memory cap).
const MAX_LOAD_ENTRIES: usize = 1 << 16;

fn header() -> String {
    format!("omega-solver-cache format={FORMAT_VERSION} solver={SOLVER_VERSION}")
}

/// FNV-1a 64-bit. `DefaultHasher` is seeded per process, so it cannot
/// checksum a file that must validate across runs.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Token writer
// ---------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' | b'.' | b'\'' | b'^' => {
                out.push(b as char);
            }
            _ => out.push_str(&format!("%{b:02x}")),
        }
    }
    if out.is_empty() {
        out.push('%');
    }
    out
}

struct W(String);

impl W {
    fn tok(&mut self, t: &str) {
        if !self.0.is_empty() {
            self.0.push(' ');
        }
        self.0.push_str(t);
    }

    fn u(&mut self, v: u64) {
        self.tok(&v.to_string());
    }

    fn i(&mut self, v: Coef) {
        self.tok(&v.to_string());
    }

    fn b(&mut self, v: bool) {
        self.tok(if v { "1" } else { "0" });
    }

    fn s(&mut self, v: &str) {
        self.tok(&esc(v));
    }

    fn kind(&mut self, k: VarKind) {
        self.u(match k {
            VarKind::Input => 0,
            VarKind::Symbolic => 1,
            VarKind::Wildcard => 2,
        });
    }

    fn op(&mut self, op: Op) {
        self.u(match op {
            Op::Sat => 0,
            Op::Project => 1,
            Op::Gist => 2,
        });
    }

    fn expr(&mut self, e: &LinExpr) {
        let terms: Vec<(VarId, Coef)> = e.terms().collect();
        self.u(terms.len() as u64);
        for (v, c) in terms {
            self.u(v.index() as u64);
            self.i(c);
        }
        self.i(e.constant());
    }

    fn constraint(&mut self, c: &Constraint) {
        self.b(c.color() == Color::Red);
        self.expr(c.expr());
    }

    fn constraints(&mut self, cs: &[Constraint]) {
        self.u(cs.len() as u64);
        for c in cs {
            self.constraint(c);
        }
    }

    fn problem(&mut self, p: &Problem) {
        self.b(p.known_infeasible);
        self.u(p.vars.len() as u64);
        for v in p.vars.iter() {
            self.s(v.name.render());
            self.kind(v.kind);
            let flags =
                u64::from(v.protected) | (u64::from(v.dead) << 1) | (u64::from(v.pinned) << 2);
            self.u(flags);
        }
        self.constraints(&p.eqs);
        self.constraints(&p.geqs);
    }

    fn base_form(&mut self, f: &BaseForm) {
        self.b(f.known_infeasible);
        self.u(f.vars.len() as u64);
        for (name, kind) in &f.vars {
            self.s(name.render());
            self.kind(*kind);
        }
        self.constraints(&f.eqs);
        self.constraints(&f.geqs);
    }

    fn key(&mut self, k: &MemoKey, base_remap: &std::collections::HashMap<u64, u64>) {
        match k {
            MemoKey::Full(ck) => {
                self.tok("F");
                self.op(ck.op);
                self.b(ck.known_infeasible);
                self.u(ck.vars.len() as u64);
                for v in ck.vars.iter() {
                    self.s(v.name.render());
                    self.kind(v.kind);
                    let flags = u64::from(v.protected)
                        | (u64::from(v.dead) << 1)
                        | (u64::from(v.pinned) << 2);
                    self.u(flags);
                }
                self.constraints(&ck.eqs);
                self.constraints(&ck.geqs);
            }
            MemoKey::Delta(dk) => {
                self.tok("D");
                self.op(dk.op);
                self.u(base_remap[&dk.base]);
                self.u(dk.vars.len() as u64);
                for (name, kind) in &dk.vars {
                    self.s(name.render());
                    self.kind(*kind);
                }
                self.u(dk.keep.len() as u64);
                for &k in &dk.keep {
                    self.u(u64::from(k));
                }
                self.constraints(&dk.eqs);
                self.constraints(&dk.geqs);
            }
        }
    }

    fn value(&mut self, v: &CachedValue) {
        match v {
            CachedValue::Sat(b) => {
                self.tok("S");
                self.b(*b);
            }
            CachedValue::Project(proj) => {
                self.tok("P");
                self.b(proj.exact);
                self.problem(&proj.dark);
                self.u(proj.splinters.len() as u64);
                for s in &proj.splinters {
                    self.problem(s);
                }
                self.problem(&proj.real);
            }
            CachedValue::Gist(g) => {
                self.tok("G");
                self.problem(g);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Token reader (every method returns `None` on malformed input)
// ---------------------------------------------------------------------

fn unesc(t: &str) -> Option<String> {
    if t == "%" {
        return Some(String::new());
    }
    let mut out = Vec::with_capacity(t.len());
    let bytes = t.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = t.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

struct R<'a> {
    toks: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> R<'a> {
    fn new(line: &'a str) -> Self {
        R {
            toks: line.split_ascii_whitespace(),
        }
    }

    fn tok(&mut self) -> Option<&'a str> {
        self.toks.next()
    }

    fn done(&mut self) -> Option<()> {
        match self.toks.next() {
            None => Some(()),
            Some(_) => None,
        }
    }

    fn u(&mut self) -> Option<u64> {
        self.tok()?.parse().ok()
    }

    fn len(&mut self) -> Option<usize> {
        // Reject absurd lengths before allocating.
        let n = self.u()?;
        (n <= 1 << 20).then_some(n as usize)
    }

    fn i(&mut self) -> Option<Coef> {
        self.tok()?.parse().ok()
    }

    fn b(&mut self) -> Option<bool> {
        match self.tok()? {
            "0" => Some(false),
            "1" => Some(true),
            _ => None,
        }
    }

    fn s(&mut self) -> Option<String> {
        unesc(self.tok()?)
    }

    fn kind(&mut self) -> Option<VarKind> {
        match self.u()? {
            0 => Some(VarKind::Input),
            1 => Some(VarKind::Symbolic),
            2 => Some(VarKind::Wildcard),
            _ => None,
        }
    }

    fn op(&mut self) -> Option<Op> {
        match self.u()? {
            0 => Some(Op::Sat),
            1 => Some(Op::Project),
            2 => Some(Op::Gist),
            _ => None,
        }
    }

    fn expr(&mut self) -> Option<LinExpr> {
        let n = self.len()?;
        let mut e = LinExpr::zero();
        for _ in 0..n {
            let v = self.u()?;
            let c = self.i()?;
            if c == 0 {
                return None; // zero terms are never serialized
            }
            e.set_coef(VarId::from_index(usize::try_from(v).ok()?), c);
        }
        e.set_constant(self.i()?);
        Some(e)
    }

    fn constraint(&mut self, eq: bool) -> Option<Constraint> {
        let red = self.b()?;
        let expr = self.expr()?;
        let c = if eq {
            Constraint::eq(expr)
        } else {
            Constraint::geq(expr)
        };
        Some(c.with_color(if red { Color::Red } else { Color::Black }))
    }

    fn constraints(&mut self, eq: bool) -> Option<Vec<Constraint>> {
        let n = self.len()?;
        (0..n).map(|_| self.constraint(eq)).collect()
    }

    fn problem(&mut self) -> Option<Problem> {
        let known_infeasible = self.b()?;
        let nvars = self.len()?;
        let mut p = Problem {
            known_infeasible,
            ..Problem::default()
        };
        for _ in 0..nvars {
            let name = self.s()?;
            let kind = self.kind()?;
            let flags = self.u()?;
            if flags > 7 {
                return None;
            }
            let v = p.add_var(name, kind);
            let info = &mut p.vars_mut()[v.index()];
            info.protected = flags & 1 != 0;
            info.dead = flags & 2 != 0;
            info.pinned = flags & 4 != 0;
        }
        p.eqs = self.constraints(true)?;
        p.geqs = self.constraints(false)?;
        Some(p)
    }

    fn base_form(&mut self) -> Option<BaseForm> {
        let known_infeasible = self.b()?;
        let nvars = self.len()?;
        let mut vars = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let name = self.s()?;
            let kind = self.kind()?;
            vars.push((Name::from_str(&name, kind), kind));
        }
        Some(BaseForm {
            known_infeasible,
            vars,
            eqs: self.constraints(true)?,
            geqs: self.constraints(false)?,
        })
    }

    fn key(&mut self, num_bases: usize) -> Option<MemoKey> {
        match self.tok()? {
            "F" => {
                let op = self.op()?;
                let known_infeasible = self.b()?;
                let nvars = self.len()?;
                let mut vars = Vec::with_capacity(nvars);
                for _ in 0..nvars {
                    let name = self.s()?;
                    let kind = self.kind()?;
                    let flags = self.u()?;
                    if flags > 7 {
                        return None;
                    }
                    vars.push(VarInfo {
                        name: Name::from_str(&name, kind),
                        kind,
                        protected: flags & 1 != 0,
                        dead: flags & 2 != 0,
                        pinned: flags & 4 != 0,
                    });
                }
                Some(MemoKey::Full(CanonKey {
                    op,
                    known_infeasible,
                    vars: Arc::new(vars),
                    eqs: self.constraints(true)?,
                    geqs: self.constraints(false)?,
                }))
            }
            "D" => {
                let op = self.op()?;
                let base = self.u()?;
                if base as usize >= num_bases {
                    return None; // dangling base reference
                }
                let nvars = self.len()?;
                let mut vars = Vec::with_capacity(nvars);
                for _ in 0..nvars {
                    let name = self.s()?;
                    let kind = self.kind()?;
                    vars.push((Name::from_str(&name, kind), kind));
                }
                let nkeep = self.len()?;
                let mut keep = Vec::with_capacity(nkeep);
                for _ in 0..nkeep {
                    keep.push(u32::try_from(self.u()?).ok()?);
                }
                Some(MemoKey::Delta(DeltaKey {
                    op,
                    base,
                    vars,
                    keep,
                    eqs: self.constraints(true)?,
                    geqs: self.constraints(false)?,
                }))
            }
            _ => None,
        }
    }

    fn value(&mut self) -> Option<CachedValue> {
        match self.tok()? {
            "S" => Some(CachedValue::Sat(self.b()?)),
            "P" => {
                let exact = self.b()?;
                let dark = self.problem()?;
                let n = self.len()?;
                let splinters = (0..n).map(|_| self.problem()).collect::<Option<_>>()?;
                let real = self.problem()?;
                Some(CachedValue::Project(Projection {
                    dark,
                    splinters,
                    real,
                    exact,
                }))
            }
            "G" => Some(CachedValue::Gist(self.problem()?)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Save / load
// ---------------------------------------------------------------------

impl SolverCache {
    /// Serializes the cache to `text` in the deterministic on-disk format.
    pub(crate) fn serialize(&self) -> String {
        let forms = self.snapshot_bases();
        let entries = self.snapshot_entries();

        // Deterministic base numbering: sort the interned forms by their
        // serialization and remap (sparse, monotonic) resident ids onto
        // dense file ids.
        let mut serialized_forms: Vec<(String, u64)> = forms
            .iter()
            .map(|(f, id)| {
                let mut w = W(String::new());
                w.base_form(f);
                (w.0, *id)
            })
            .collect();
        serialized_forms.sort();
        let mut base_remap = std::collections::HashMap::new();
        for (new_id, (_, old_id)) in serialized_forms.iter().enumerate() {
            base_remap.insert(*old_id, new_id as u64);
        }

        let mut out = header();
        out.push('\n');
        for (new_id, (form_ser, _)) in serialized_forms.iter().enumerate() {
            out.push_str(&format!("B {new_id} {form_ser}\n"));
        }

        let mut lines: Vec<String> = entries
            .iter()
            .filter(|(key, _)| {
                // Entries whose base was evicted (or never recorded: the
                // intern table was full) are unreachable in memory and
                // meaningless on disk — skip them.
                match key {
                    MemoKey::Delta(dk) => base_remap.contains_key(&dk.base),
                    MemoKey::Full(_) => true,
                }
            })
            .map(|(key, entry)| {
                let mut w = W(String::new());
                w.key(key, &base_remap);
                w.u(entry.cost as u64);
                w.value(&entry.value);
                format!("E {}\n", w.0)
            })
            .collect();
        lines.sort();
        for l in &lines {
            out.push_str(l);
        }

        let checksum = fnv64(out.as_bytes());
        out.push_str(&format!("C {checksum:016x}\n"));
        out
    }

    /// Writes the cache to `path` in a versioned, deterministic text
    /// format. Two caches with the same contents produce byte-identical
    /// files.
    ///
    /// The write is atomic: the bytes go to a uniquely named temporary
    /// file in the same directory, synced, and renamed over `path`. A
    /// crash mid-write, or two concurrent saves to the same path (a
    /// server shutdown racing a one-shot run sharing `--cache-file`),
    /// can therefore never leave a torn file — readers see either the
    /// old complete cache or the new complete cache. The checksum in
    /// the format is the second line of defense, not the first.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing, syncing, or renaming; the
    /// temporary file is removed on failure.
    pub fn save_to(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write as _;
        use std::sync::atomic::{AtomicU64, Ordering};

        // Unique per (process, call): concurrent saves in one process get
        // distinct temp names, and the pid separates processes sharing a
        // cache path.
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let file_name = path
            .file_name()
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "cache path has no file name")
            })?
            .to_string_lossy()
            .into_owned();
        let tmp = path.with_file_name(format!(
            ".{file_name}.tmp.{}.{seq}",
            std::process::id()
        ));
        let write_and_sync = |tmp: &Path| -> std::io::Result<()> {
            let mut f = std::fs::File::create(tmp)?;
            f.write_all(self.serialize().as_bytes())?;
            // Without the sync, a crash after the rename could still
            // surface an empty or partial file on some filesystems.
            f.sync_all()
        };
        match write_and_sync(&tmp).and_then(|()| std::fs::rename(&tmp, path)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Parses a serialized cache; `None` on any malformed input.
    pub(crate) fn deserialize(content: &str) -> Option<SolverCache> {
        // The checksum line covers every byte before it.
        let c_start = if let Some(pos) = content.rfind("\nC ") {
            pos + 1
        } else if content.starts_with("C ") {
            0
        } else {
            return None;
        };
        let prefix = &content[..c_start];
        let mut r = R::new(content[c_start..].trim_end());
        if r.tok()? != "C" {
            return None;
        }
        let stored = u64::from_str_radix(r.tok()?, 16).ok()?;
        r.done()?;
        if fnv64(prefix.as_bytes()) != stored {
            return None;
        }

        let mut lines = prefix.lines();
        if lines.next()? != header() {
            return None;
        }

        let cache = SolverCache::new();
        let mut num_bases = 0usize;
        let mut num_entries = 0usize;
        for line in lines {
            let mut r = R::new(line);
            match r.tok()? {
                "B" => {
                    // Ids must be dense and in order so the rebuilt intern
                    // table assigns them identically.
                    if r.u()? != num_bases as u64 {
                        return None;
                    }
                    let form = r.base_form()?;
                    r.done()?;
                    cache.insert_loaded_base(form, num_bases as u64);
                    num_bases += 1;
                }
                "E" => {
                    let key = r.key(num_bases)?;
                    let cost = usize::try_from(r.u()?).ok()?;
                    let value = r.value()?;
                    r.done()?;
                    if num_entries < MAX_LOAD_ENTRIES {
                        cache.insert_loaded_entry(key, Entry { cost, value });
                        num_entries += 1;
                    }
                }
                _ => return None,
            }
        }
        Some(cache)
    }

    /// Loads a cache previously written by [`SolverCache::save_to`].
    ///
    /// Returns an **empty** cache (never an error) when the file is
    /// missing, truncated, corrupt, or was written by a different format
    /// or solver version — a stale cache must degrade to a cold run, not
    /// poison results.
    pub fn load_from(path: &Path) -> SolverCache {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|content| SolverCache::deserialize(&content))
            .unwrap_or_default()
    }
}

/// A `HashMap` snapshot of the entry lines, for tests comparing caches.
#[cfg(test)]
fn entry_snapshot(
    cache: &SolverCache,
) -> std::collections::HashMap<MemoKey, (usize, String)> {
    cache
        .snapshot_entries()
        .into_iter()
        .map(|(k, e)| {
            let mut w = W(String::new());
            w.value(&e.value);
            (k, (e.cost, w.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, PairContext, ProblemLike, DEFAULT_BUDGET};
    use std::sync::Arc;

    fn populated_cache() -> Arc<SolverCache> {
        let cache = Arc::new(SolverCache::new());
        let mut budget = Budget::new(DEFAULT_BUDGET).with_cache(cache.clone());

        // A full-key sat entry and a projection entry.
        let mut p = Problem::new();
        let x = p.add_var("x~weird name", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-1));
        p.add_geq(LinExpr::term(2, y).plus_term(-1, x));
        p.is_satisfiable_with(&mut budget).unwrap();
        p.project_with(&[x], &mut budget).unwrap();

        // Delta-keyed entries through a pair context.
        let ctx = PairContext::new(p.clone(), &budget);
        let mut q = ctx.derive();
        q.constrain_lt(&LinExpr::var(x), &LinExpr::var(y)).unwrap();
        q.is_satisfiable_with(&mut budget).unwrap();
        q.project_with(&[y], &mut budget).unwrap();

        // A gist entry.
        let mut g = p.clone();
        g.add_constraint(
            Constraint::geq(LinExpr::var(y).plus_const(-3)).with_color(Color::Red),
        );
        g.gist_red(&mut budget).unwrap();
        cache
    }

    #[test]
    fn round_trip_preserves_entries_and_bases() {
        let cache = populated_cache();
        let text = cache.serialize();
        let loaded = SolverCache::deserialize(&text).expect("round trip parses");
        // Base ids may be renumbered, so compare via a re-serialize: the
        // deterministic writer must produce identical bytes.
        assert_eq!(text, loaded.serialize());
        assert_eq!(cache.entry_count(), loaded.entry_count());
        assert_eq!(cache.stats().base_forms, loaded.stats().base_forms);
        // And entry contents survive modulo base renumbering (singleton
        // base table here, so keys match exactly).
        assert_eq!(entry_snapshot(&cache), entry_snapshot(&loaded));
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = populated_cache().serialize();
        let b = populated_cache().serialize();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_and_stale_files_load_empty() {
        let good = populated_cache().serialize();

        // Bit-flip in the middle: checksum rejects.
        let mut corrupt = good.clone().into_bytes();
        let mid = corrupt.len() / 2;
        corrupt[mid] = corrupt[mid].wrapping_add(1);
        let corrupt = String::from_utf8_lossy(&corrupt).into_owned();
        assert!(SolverCache::deserialize(&corrupt).is_none());

        // Truncation: the checksum line is gone or covers missing bytes.
        let truncated = &good[..good.len() * 2 / 3];
        assert!(SolverCache::deserialize(truncated).is_none());

        // Version bump: header mismatch rejects even with a valid
        // checksum over the edited content.
        let stale = good.replace("solver=1", "solver=0");
        let body_end = stale.rfind("\nC ").unwrap() + 1;
        let restamped = format!(
            "{}C {:016x}\n",
            &stale[..body_end],
            fnv64(stale[..body_end].as_bytes())
        );
        assert!(SolverCache::deserialize(&restamped).is_none());

        // Garbage and empty input.
        assert!(SolverCache::deserialize("not a cache").is_none());
        assert!(SolverCache::deserialize("").is_none());
    }

    #[test]
    fn load_from_missing_path_is_empty() {
        let cache = SolverCache::load_from(Path::new("/nonexistent/omega-cache"));
        assert_eq!(cache.entry_count(), 0);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn loaded_cache_serves_warm_hits_with_cold_costs() {
        let cache = populated_cache();
        let text = cache.serialize();
        let loaded = Arc::new(SolverCache::deserialize(&text).unwrap());

        let mut p = Problem::new();
        let x = p.add_var("x~weird name", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-1));
        p.add_geq(LinExpr::term(2, y).plus_term(-1, x));

        // Cold cost measured against a fresh cache.
        let mut cold = Budget::new(DEFAULT_BUDGET).with_cache(Arc::new(SolverCache::new()));
        let cold_verdict = p.is_satisfiable_with(&mut cold).unwrap();
        let cold_cost = DEFAULT_BUDGET - cold.remaining();

        // Warm run against the loaded cache: same verdict, same cost,
        // zero misses.
        let mut warm = Budget::new(DEFAULT_BUDGET).with_cache(loaded.clone());
        assert_eq!(p.is_satisfiable_with(&mut warm).unwrap(), cold_verdict);
        assert_eq!(DEFAULT_BUDGET - warm.remaining(), cold_cost);
        assert_eq!(loaded.stats().misses, 0);
        assert_eq!(loaded.stats().hits, 1);

        // Delta-keyed queries also hit: the rebuilt intern table hands the
        // new PairContext the stored base id.
        let mut budget = Budget::new(DEFAULT_BUDGET).with_cache(loaded.clone());
        let ctx = PairContext::new(p, &budget);
        let mut q = ctx.derive();
        q.constrain_lt(&LinExpr::var(x), &LinExpr::var(y)).unwrap();
        q.is_satisfiable_with(&mut budget).unwrap();
        assert_eq!(loaded.stats().misses, 0);
    }

    #[test]
    fn string_escaping_round_trips() {
        for s in ["", "plain", "with space", "per%cent", "tab\tand\nnewline", "ünïcode"] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
        }
    }
}
