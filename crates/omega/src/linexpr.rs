//! Dense linear expressions and the constraints built from them.

use crate::int::{self, Coef};
use crate::{Result, VarId};

/// A linear expression `Σ cᵢ·xᵢ + k` with integer coefficients.
///
/// Coefficient storage is sparse-tailed: positions past the end of the
/// internal vector read as zero, so expressions created before a variable
/// was added to the problem remain valid afterwards. The vector never
/// ends in a zero — every mutator trims trailing zeros — so the derived
/// `PartialEq`/`Hash` are canonical: two expressions are equal exactly
/// when they denote the same linear function.
///
/// # Examples
///
/// ```
/// use omega::{LinExpr, Problem, VarKind};
///
/// let mut p = Problem::new();
/// let x = p.add_var("x", VarKind::Input);
/// let e = LinExpr::term(2, x).plus_const(3); // 2x + 3
/// assert_eq!(e.coef(x), 2);
/// assert_eq!(e.constant(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    coeffs: Vec<Coef>,
    constant: Coef,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant_expr(k: Coef) -> Self {
        LinExpr {
            coeffs: Vec::new(),
            constant: k,
        }
    }

    /// The single term `c · v`.
    pub fn term(c: Coef, v: VarId) -> Self {
        let mut e = LinExpr::zero();
        e.set_coef(v, c);
        e
    }

    /// The variable `v` itself (coefficient 1).
    pub fn var(v: VarId) -> Self {
        Self::term(1, v)
    }

    /// The coefficient of `v` (zero when absent).
    pub fn coef(&self, v: VarId) -> Coef {
        self.coeffs.get(v.index()).copied().unwrap_or(0)
    }

    /// Builds an expression from a dense coefficient slice (used by the
    /// tableau kernel when re-interning rows), trimming trailing zeros to
    /// keep the canonical no-trailing-zero invariant.
    pub(crate) fn from_dense(coeffs: &[Coef], constant: Coef) -> Self {
        let len = coeffs.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
        LinExpr {
            coeffs: coeffs[..len].to_vec(),
            constant,
        }
    }

    /// The constant term.
    pub fn constant(&self) -> Coef {
        self.constant
    }

    /// Sets the constant term.
    pub fn set_constant(&mut self, k: Coef) {
        self.constant = k;
    }

    /// Sets the coefficient of `v`.
    pub fn set_coef(&mut self, v: VarId, c: Coef) {
        let i = v.index();
        if i >= self.coeffs.len() {
            if c == 0 {
                return;
            }
            self.coeffs.resize(i + 1, 0);
        }
        self.coeffs[i] = c;
        if c == 0 {
            self.trim();
        }
    }

    /// Drops trailing zero coefficients, restoring the canonical-storage
    /// invariant after a mutation that may have zeroed the tail.
    fn trim(&mut self) {
        while self.coeffs.last() == Some(&0) {
            self.coeffs.pop();
        }
    }

    /// Adds `c` to the coefficient of `v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) on coefficient
    /// overflow.
    pub fn add_coef(&mut self, v: VarId, c: Coef) -> Result<()> {
        let cur = self.coef(v);
        self.set_coef(v, int::narrow(cur as i128 + c as i128)?);
        Ok(())
    }

    /// Adds `k` to the constant term.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) on overflow.
    pub fn add_constant(&mut self, k: Coef) -> Result<()> {
        self.constant = int::narrow(self.constant as i128 + k as i128)?;
        Ok(())
    }

    /// Returns `self + k`, consuming `self`. Panics-free builder used in
    /// examples and tests where operands are small.
    ///
    /// # Panics
    ///
    /// Panics on overflow; use [`LinExpr::add_constant`] for checked
    /// arithmetic.
    pub fn plus_const(mut self, k: Coef) -> Self {
        self.add_constant(k).expect("constant overflow");
        self
    }

    /// Returns `self + c·v`, consuming `self`.
    ///
    /// # Panics
    ///
    /// Panics on overflow; use [`LinExpr::add_coef`] for checked arithmetic.
    pub fn plus_term(mut self, c: Coef, v: VarId) -> Self {
        self.add_coef(v, c).expect("coefficient overflow");
        self
    }

    /// `self := self + m * other`, exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) if any resulting
    /// coefficient exceeds `i64`.
    pub fn add_scaled(&mut self, m: Coef, other: &LinExpr) -> Result<()> {
        if other.coeffs.len() > self.coeffs.len() {
            self.coeffs.resize(other.coeffs.len(), 0);
        }
        for (i, &oc) in other.coeffs.iter().enumerate() {
            if oc != 0 {
                self.coeffs[i] = int::mul_add(m, oc, self.coeffs[i])?;
            }
        }
        self.constant = int::mul_add(m, other.constant, self.constant)?;
        self.trim();
        Ok(())
    }

    /// Returns `a*self + b*other` as a fresh expression.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) on coefficient
    /// overflow.
    pub fn combine(&self, a: Coef, b: Coef, other: &LinExpr) -> Result<LinExpr> {
        let mut r = LinExpr::zero();
        r.add_scaled(a, self)?;
        r.add_scaled(b, other)?;
        Ok(r)
    }

    /// Negates the expression in place. Never overflows for values produced
    /// by this crate (we never store `i64::MIN`).
    pub fn negate(&mut self) {
        for c in &mut self.coeffs {
            *c = -*c;
        }
        self.constant = -self.constant;
    }

    /// Returns the negated expression.
    pub fn negated(&self) -> LinExpr {
        let mut e = self.clone();
        e.negate();
        e
    }

    /// Multiplies the whole expression by `m`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) on overflow.
    pub fn scale(&mut self, m: Coef) -> Result<()> {
        for c in &mut self.coeffs {
            *c = int::narrow(*c as i128 * m as i128)?;
        }
        self.constant = int::narrow(self.constant as i128 * m as i128)?;
        if m == 0 {
            self.trim();
        }
        Ok(())
    }

    /// Divides every coefficient and the constant exactly by `d`.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is not divisible by `d` (internal
    /// invariant; callers divide by a computed gcd).
    pub(crate) fn divide_exact(&mut self, d: Coef) {
        debug_assert!(d > 0);
        for c in &mut self.coeffs {
            debug_assert_eq!(*c % d, 0);
            *c /= d;
        }
        debug_assert_eq!(self.constant % d, 0);
        self.constant /= d;
    }

    /// GCD of all variable coefficients (not the constant); zero when the
    /// expression has no variables.
    pub fn coef_gcd(&self) -> Coef {
        self.coeffs.iter().fold(0, |g, &c| int::gcd(g, c))
    }

    /// Iterates over `(VarId, coefficient)` pairs with non-zero coefficient.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, Coef)> + '_ {
        self.coeffs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (VarId::from_index(i), c))
    }

    /// True when the expression has no variable with non-zero coefficient.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Number of variables with non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.coeffs.iter().filter(|&&c| c != 0).count()
    }

    /// Evaluates the expression under a (dense) assignment. Positions past
    /// the end of `values` are treated as zero.
    pub fn eval(&self, values: &[Coef]) -> i128 {
        let mut acc = self.constant as i128;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                acc += c as i128 * values.get(i).copied().unwrap_or(0) as i128;
            }
        }
        acc
    }

    /// Substitutes `v := replacement` (which must not mention `v`),
    /// eliminating `v` from this expression.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) on overflow.
    ///
    /// # Panics
    ///
    /// Debug-panics if `replacement` mentions `v`.
    pub fn substitute(&mut self, v: VarId, replacement: &LinExpr) -> Result<()> {
        debug_assert_eq!(replacement.coef(v), 0, "self-referential substitution");
        let c = self.coef(v);
        if c == 0 {
            return Ok(());
        }
        self.set_coef(v, 0);
        self.add_scaled(c, replacement)
    }

    /// The dense coefficient vector, borrowed. The storage invariant (no
    /// trailing zeros) makes the slice canonical: two expressions have
    /// equal slices iff they have equal coefficients, so this doubles as
    /// an allocation-free duplicate-detection key (ignoring constants).
    pub(crate) fn coeffs(&self) -> &[Coef] {
        &self.coeffs
    }
}

/// The relation a constraint asserts about its expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `expr == 0`
    Zero,
    /// `expr >= 0`
    NonNegative,
}

/// Constraint color for the red/black gist machinery of §3.3.2.
///
/// Black constraints are "things already known"; red constraints are the
/// candidate new information whose gist is being computed. Ordinary
/// problems use [`Color::Black`] throughout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Color {
    /// Known context (`q` in `gist p given q`).
    #[default]
    Black,
    /// Candidate new information (`p` in `gist p given q`).
    Red,
}

impl Color {
    /// Combining rule for *derived* constraints: any red parent makes the
    /// child red (new information propagates).
    pub fn join(self, other: Color) -> Color {
        if self == Color::Red || other == Color::Red {
            Color::Red
        } else {
            Color::Black
        }
    }

    /// Merging rule for *identical* constraints: black wins — a fact that
    /// is already known stays known, and the red duplicate carries no new
    /// information.
    pub fn meet(self, other: Color) -> Color {
        if self == Color::Black || other == Color::Black {
            Color::Black
        } else {
            Color::Red
        }
    }
}

/// One constraint of a [`Problem`](crate::Problem): an expression together
/// with its relation to zero and its gist color.
///
/// The expression is held as an interned row (see
/// [`row`](crate::row)): structurally equal expressions share one
/// allocation, so cloning a constraint is a reference-count bump and the
/// derived equality / hash collapse to an id comparison — which, for live
/// rows, the store guarantees coincides with content comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    pub(crate) row: std::sync::Arc<crate::row::Row>,
    pub(crate) rel: Relation,
    pub(crate) color: Color,
}

impl Constraint {
    /// Creates `expr == 0`.
    pub fn eq(expr: LinExpr) -> Self {
        Constraint {
            row: crate::row::intern(expr),
            rel: Relation::Zero,
            color: Color::Black,
        }
    }

    /// Creates `expr >= 0`.
    pub fn geq(expr: LinExpr) -> Self {
        Constraint {
            row: crate::row::intern(expr),
            rel: Relation::NonNegative,
            color: Color::Black,
        }
    }

    /// Recolors the constraint.
    pub fn with_color(mut self, color: Color) -> Self {
        self.color = color;
        self
    }

    /// The underlying expression.
    pub fn expr(&self) -> &LinExpr {
        &self.row.expr
    }

    /// Rewrites the expression through `f`, re-interning only when the
    /// content actually changed (no-op rewrites keep the shared row).
    pub(crate) fn map_expr(&mut self, f: impl FnOnce(&mut LinExpr)) {
        let mut e = self.row.expr.clone();
        f(&mut e);
        if e != self.row.expr {
            self.row = crate::row::intern(e);
        }
    }

    /// Replaces the expression wholesale.
    pub(crate) fn set_expr(&mut self, expr: LinExpr) {
        if expr != self.row.expr {
            self.row = crate::row::intern(expr);
        }
    }

    /// The relation asserted.
    pub fn relation(&self) -> Relation {
        self.rel
    }

    /// The gist color.
    pub fn color(&self) -> Color {
        self.color
    }

    /// Whether an assignment satisfies the constraint.
    pub fn holds(&self, values: &[Coef]) -> bool {
        let v = self.expr().eval(values);
        match self.rel {
            Relation::Zero => v == 0,
            Relation::NonNegative => v >= 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarId;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn build_and_read_back() {
        let e = LinExpr::term(3, v(0)).plus_term(-2, v(2)).plus_const(5);
        assert_eq!(e.coef(v(0)), 3);
        assert_eq!(e.coef(v(1)), 0);
        assert_eq!(e.coef(v(2)), -2);
        assert_eq!(e.constant(), 5);
        assert_eq!(e.num_terms(), 2);
        assert!(!e.is_constant());
    }

    #[test]
    fn sparse_tail_reads_as_zero() {
        let e = LinExpr::term(1, v(0));
        assert_eq!(e.coef(v(100)), 0);
    }

    #[test]
    fn zeroing_a_tail_coefficient_restores_equality_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |e: &LinExpr| {
            let mut h = DefaultHasher::new();
            e.hash(&mut h);
            h.finish()
        };
        // x + 2z, then z zeroed: must equal (and hash like) plain x.
        let mut a = LinExpr::term(1, v(0)).plus_term(2, v(2));
        a.set_coef(v(2), 0);
        let b = LinExpr::term(1, v(0));
        assert_eq!(a, b);
        assert_eq!(hash(&a), hash(&b));
        assert_eq!(a.coeffs(), b.coeffs());
    }

    #[test]
    fn cancelling_arithmetic_trims_the_tail() {
        // add_scaled cancellation: (x + 3y) - 3y == x.
        let mut a = LinExpr::term(1, v(0)).plus_term(3, v(1));
        a.add_scaled(-3, &LinExpr::var(v(1))).unwrap();
        assert_eq!(a, LinExpr::var(v(0)));
        // scale by zero: everything collapses to the zero expression.
        let mut b = LinExpr::term(5, v(3)).plus_const(7);
        b.scale(0).unwrap();
        assert_eq!(b, LinExpr::zero());
        // substitute eliminating the last variable trims too.
        let mut c = LinExpr::term(2, v(1));
        c.substitute(v(1), &LinExpr::constant_expr(4)).unwrap();
        assert_eq!(c, LinExpr::constant_expr(8));
    }

    #[test]
    fn combine_is_exact() {
        let a = LinExpr::term(2, v(0)).plus_const(1);
        let b = LinExpr::term(3, v(1)).plus_const(-4);
        let c = a.combine(3, 2, &b).unwrap(); // 6x + 6y + 3 - 8
        assert_eq!(c.coef(v(0)), 6);
        assert_eq!(c.coef(v(1)), 6);
        assert_eq!(c.constant(), -5);
    }

    #[test]
    fn substitute_eliminates_variable() {
        // e = 2x + y + 1, x := 3y - 2  =>  e = 7y - 3
        let mut e = LinExpr::term(2, v(0)).plus_term(1, v(1)).plus_const(1);
        let r = LinExpr::term(3, v(1)).plus_const(-2);
        e.substitute(v(0), &r).unwrap();
        assert_eq!(e.coef(v(0)), 0);
        assert_eq!(e.coef(v(1)), 7);
        assert_eq!(e.constant(), -3);
    }

    #[test]
    fn eval_matches_structure() {
        let e = LinExpr::term(2, v(0)).plus_term(-1, v(1)).plus_const(4);
        assert_eq!(e.eval(&[3, 5]), 2 * 3 - 5 + 4);
        assert_eq!(e.eval(&[]), 4);
    }

    #[test]
    fn coef_gcd_ignores_constant() {
        let e = LinExpr::term(4, v(0)).plus_term(6, v(1)).plus_const(3);
        assert_eq!(e.coef_gcd(), 2);
        assert_eq!(LinExpr::constant_expr(7).coef_gcd(), 0);
    }

    #[test]
    fn color_join() {
        assert_eq!(Color::Black.join(Color::Black), Color::Black);
        assert_eq!(Color::Red.join(Color::Black), Color::Red);
        assert_eq!(Color::Black.join(Color::Red), Color::Red);
    }

    #[test]
    fn constraint_holds() {
        let c = Constraint::geq(LinExpr::term(1, v(0)).plus_const(-3)); // x - 3 >= 0
        assert!(c.holds(&[3]));
        assert!(c.holds(&[10]));
        assert!(!c.holds(&[2]));
        let e = Constraint::eq(LinExpr::term(2, v(0)).plus_term(-1, v(1)))
            .with_color(Color::Red);
        assert!(e.holds(&[2, 4]));
        assert!(!e.holds(&[2, 5]));
        assert_eq!(e.color(), Color::Red);
    }
}
