//! Fourier–Motzkin variable elimination extended to integers: the real
//! shadow, the dark shadow, and splintering (§3 of the paper, after
//! Pugh '91).
//!
//! For a lower bound `b·z ≥ β` and an upper bound `a·z ≤ α` (`a, b > 0`):
//!
//! * the **real shadow** contains `a·β ≤ b·α` — a conservative
//!   over-approximation of the integer shadow;
//! * the **dark shadow** contains `a·β + (a−1)(b−1) ≤ b·α` — a pessimistic
//!   under-approximation that *guarantees* an integer value of `z` exists;
//! * when `a = 1` or `b = 1` the two coincide and elimination is **exact**.
//!
//! When the shadows differ, any integer solution outside the dark shadow
//! must sit close to some lower bound: `b·z = β + i` for some
//! `0 ≤ i ≤ (a_max·b − a_max − b)/a_max`. Those equality-augmented
//! subproblems are the **splinters**.

use crate::int::{self, Coef};
use crate::linexpr::Constraint;
use crate::problem::{Budget, Problem};
use crate::var::VarId;
use crate::Result;

/// Outcome of eliminating one variable from the inequalities.
#[derive(Debug, Clone)]
pub(crate) enum Elimination {
    /// The shadow is exact: same integer solutions as the original.
    Exact(Problem),
    /// The shadow splintered.
    Approx {
        /// `S₀`: satisfiable ⇒ original satisfiable.
        dark: Problem,
        /// `T`: unsatisfiable ⇒ original unsatisfiable.
        real: Problem,
        /// `S₁…Sₚ`: each still contains the eliminated variable, pinned by
        /// an equality, so recursive processing removes it exactly.
        splinters: Vec<Problem>,
    },
}

impl Problem {
    /// Eliminates `v` from the inequalities by Fourier–Motzkin.
    ///
    /// Precondition: no equality mentions `v` (equality elimination runs
    /// first).
    ///
    /// # Errors
    ///
    /// Propagates overflow and budget exhaustion.
    pub(crate) fn fm_eliminate(&self, v: VarId, budget: &mut Budget) -> Result<Elimination> {
        debug_assert!(
            self.eqs.iter().all(|c| c.expr().coef(v) == 0),
            "fm_eliminate called with {v} still in an equality"
        );
        let mut lowers: Vec<&Constraint> = Vec::new();
        let mut uppers: Vec<&Constraint> = Vec::new();
        let mut base = Problem {
            vars: self.vars.clone(),
            eqs: self.eqs.clone(),
            geqs: Vec::new(),
            known_infeasible: self.known_infeasible,
        };
        for c in &self.geqs {
            let coef = c.expr().coef(v);
            if coef > 0 {
                lowers.push(c);
            } else if coef < 0 {
                uppers.push(c);
            } else {
                base.geqs.push(c.clone());
            }
        }
        base.mark_dead(v);

        if lowers.is_empty() || uppers.is_empty() {
            // Unbounded in one direction: an integer z always exists.
            return Ok(Elimination::Exact(base));
        }

        budget.spend(lowers.len() * uppers.len())?;

        let mut dark = base.clone();
        let mut real = base.clone();
        let mut inexact = false;
        for l in &lowers {
            let b = l.expr().coef(v);
            for u in &uppers {
                let a = -u.expr().coef(v);
                debug_assert!(a > 0 && b > 0);
                // a·L + b·U removes v; for L = b·z − β ≥ 0 and
                // U = α − a·z ≥ 0 this is exactly b·α − a·β ≥ 0.
                let combined = l.expr().combine(a, b, u.expr())?;
                let color = l.color.join(u.color);
                real.geqs
                    .push(Constraint::geq(combined.clone()).with_color(color));
                let slack = (a as i128 - 1) * (b as i128 - 1);
                if slack == 0 {
                    dark.geqs.push(Constraint::geq(combined).with_color(color));
                } else {
                    inexact = true;
                    let mut d = combined;
                    d.add_constant(int::narrow(-slack)?)?;
                    dark.geqs.push(Constraint::geq(d).with_color(color));
                }
            }
        }

        if !inexact {
            return Ok(Elimination::Exact(real));
        }

        // Splinters: for each lower bound b·z ≥ β, pin b·z = β + i.
        let a_max = uppers
            .iter()
            .map(|u| -u.expr().coef(v))
            .max()
            .expect("uppers nonempty");
        let mut splinters = Vec::new();
        for l in &lowers {
            let b = l.expr().coef(v);
            // max offset: (a_max·b − a_max − b) / a_max, floored.
            let num = a_max as i128 * b as i128 - a_max as i128 - b as i128;
            let max_i = int::floor_div(int::narrow(num)?, a_max);
            for i in 0..=max_i.max(-1) {
                budget.spend(1)?;
                let mut s = self.clone();
                // l.expr = b·z − β ≥ 0; pin b·z − β − i = 0.
                let mut eq = l.expr().clone();
                eq.add_constant(-i)?;
                s.eqs.push(Constraint::eq(eq).with_color(l.color));
                splinters.push(s);
            }
        }
        Ok(Elimination::Approx {
            dark,
            real,
            splinters,
        })
    }

    /// Chooses the next inequality variable to eliminate among live,
    /// unprotected variables: prefers variables whose elimination is exact,
    /// then minimizes the number of generated constraints.
    pub(crate) fn choose_elimination_var(&self) -> Option<(VarId, bool)> {
        let mut best: Option<(VarId, bool, usize)> = None;
        for v in self.occurring_vars() {
            if self.is_protected(v) || self.is_pinned(v) {
                continue;
            }
            let (mut n_l, mut n_u) = (0usize, 0usize);
            let (mut max_a, mut max_b) = (0 as Coef, 0 as Coef);
            let mut in_eq = false;
            for c in &self.eqs {
                if c.expr().coef(v) != 0 {
                    in_eq = true;
                }
            }
            if in_eq {
                // Equality elimination handles it; skip here.
                continue;
            }
            for c in &self.geqs {
                let coef = c.expr().coef(v);
                if coef > 0 {
                    n_l += 1;
                    max_b = max_b.max(coef);
                } else if coef < 0 {
                    n_u += 1;
                    max_a = max_a.max(-coef);
                }
            }
            let exact = n_l == 0 || n_u == 0 || max_a == 1 || max_b == 1;
            let cost = n_l * n_u;
            let better = match best {
                None => true,
                Some((_, bex, bcost)) => (!exact, cost) < (!bex, bcost),
            };
            if better {
                best = Some((v, exact, cost));
            }
        }
        best.map(|(v, exact, _)| (v, exact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use crate::var::VarKind;

    /// Sets up `0 <= a <= 5`, `b < a <= 5b` — the projection example from
    /// §3 of the paper, whose shadow on `a` is `2 <= a <= 5`.
    fn paper_example() -> (Problem, VarId, VarId) {
        let mut p = Problem::new();
        let a = p.add_var("a", VarKind::Input);
        let b = p.add_var("b", VarKind::Input);
        p.add_geq(LinExpr::var(a)); // a >= 0
        p.add_geq(LinExpr::term(-1, a).plus_const(5)); // a <= 5
        p.add_geq(LinExpr::var(a).plus_term(-1, b).plus_const(-1)); // a > b
        p.add_geq(LinExpr::term(5, b).plus_term(-1, a)); // 5b >= a
        (p, a, b)
    }

    #[test]
    fn unbounded_direction_is_exact() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_term(-1, y)); // x >= y, no upper bound on x
        let mut b = Budget::default();
        match p.fm_eliminate(x, &mut b).unwrap() {
            Elimination::Exact(q) => assert!(q.geqs().is_empty()),
            other => panic!("expected exact elimination, got {other:?}"),
        }
    }

    #[test]
    fn unit_coefficients_are_exact() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_term(-1, y)); // x >= y
        p.add_geq(LinExpr::term(-1, x).plus_const(10)); // x <= 10
        let mut b = Budget::default();
        match p.fm_eliminate(x, &mut b).unwrap() {
            Elimination::Exact(q) => {
                assert_eq!(q.geqs().len(), 1);
                // y <= 10
                assert_eq!(q.geqs()[0].expr().coef(y), -1);
                assert_eq!(q.geqs()[0].expr().constant(), 10);
            }
            other => panic!("expected exact, got {other:?}"),
        }
    }

    #[test]
    fn paper_projection_example_shadow() {
        // Eliminating b from {0 <= a <= 5, b < a <= 5b}: bounds on b are
        // 5b >= a (lower, coef 5) and b <= a - 1 (upper, coef 1) -> exact
        // pair (a=1). Shadow: 5(a-1) >= a i.e. 4a >= 5 -> a >= 2 after
        // tightening.
        let (p, a, b) = paper_example();
        let mut budget = Budget::default();
        match p.fm_eliminate(b, &mut budget).unwrap() {
            Elimination::Exact(mut q) => {
                q.normalize().unwrap();
                // Constraints on a alone: a >= 0, a <= 5, 4a - 5 >= 0 -> a >= 2.
                let lower = q
                    .geqs()
                    .iter()
                    .filter(|c| c.expr().coef(a) > 0)
                    .map(|c| -c.expr().constant())
                    .max()
                    .unwrap();
                assert_eq!(lower, 2, "paper says shadow is 2 <= a <= 5");
            }
            other => panic!("expected exact, got {other:?}"),
        }
    }

    #[test]
    fn dark_shadow_differs_from_real() {
        // 2x <= 2y + 1 and 2x >= 2y - 1 force 2x ∈ [2y-1, 2y+1]: x = y is
        // an integer solution, so this IS satisfiable; but eliminating x:
        // lower 2x >= 2y - 1 (b=2), upper 2x <= 2y + 1 (a=2): real shadow
        // 2(2y-1) <= 2(2y+1) always true; dark adds (a-1)(b-1)=1 slack.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_geq(LinExpr::term(2, x).plus_term(-2, y).plus_const(1)); // 2x >= 2y - 1
        p.add_geq(LinExpr::term(-2, x).plus_term(2, y).plus_const(1)); // 2x <= 2y + 1
        let mut b = Budget::default();
        match p.fm_eliminate(x, &mut b).unwrap() {
            Elimination::Approx {
                dark,
                real,
                splinters,
            } => {
                // Real shadow: 0 >= -4 (tautology).
                let mut r = real;
                r.normalize().unwrap();
                assert!(r.geqs().is_empty());
                // Dark shadow: constant 4 - 1 = 3 >= 0, still tautology ->
                // dark satisfiable, so original satisfiable (x = y).
                let mut d = dark;
                d.normalize().unwrap();
                assert!(!d.is_known_infeasible());
                assert!(!splinters.is_empty());
            }
            other => panic!("expected approx, got {other:?}"),
        }
    }

    #[test]
    fn splinters_pin_lower_bounds() {
        // 3x >= y and 2x <= y - 1, eliminating x: a=2, b=3, inexact.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_geq(LinExpr::term(3, x).plus_term(-1, y)); // 3x - y >= 0
        p.add_geq(LinExpr::term(-2, x).plus_term(1, y).plus_const(-1)); // y - 2x - 1 >= 0
        let mut b = Budget::default();
        match p.fm_eliminate(x, &mut b).unwrap() {
            Elimination::Approx { splinters, .. } => {
                // a_max=2, b=3: max_i = floor((6-2-3)/2) = 0 -> one splinter.
                assert_eq!(splinters.len(), 1);
                assert_eq!(splinters[0].eqs().len(), 1);
                // The splinter equality is 3x - y = 0.
                let eq = &splinters[0].eqs()[0];
                assert_eq!(eq.expr().coef(x), 3);
                assert_eq!(eq.expr().coef(y), -1);
                assert_eq!(eq.expr().constant(), 0);
            }
            other => panic!("expected approx, got {other:?}"),
        }
    }

    #[test]
    fn chooser_prefers_exact_variables() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        // x has coefficient 2 on both sides (inexact pair); y has unit
        // bounds (exact).
        p.add_geq(LinExpr::term(2, x).plus_const(-7));
        p.add_geq(LinExpr::term(-2, x).plus_const(9));
        p.add_geq(LinExpr::var(y).plus_const(-1));
        p.add_geq(LinExpr::term(-1, y).plus_const(10));
        let (v, exact) = p.choose_elimination_var().unwrap();
        assert_eq!(v, y);
        assert!(exact);
        let _ = x;
    }

    #[test]
    fn chooser_skips_protected() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.set_protected(x, true);
        p.add_geq(LinExpr::var(x).plus_term(-1, y));
        p.add_geq(LinExpr::var(y));
        let (v, _) = p.choose_elimination_var().unwrap();
        assert_eq!(v, y);
    }
}
