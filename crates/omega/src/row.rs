//! Hash-consed constraint rows.
//!
//! Every [`Constraint`](crate::Constraint) holds its expression as an
//! `Arc<Row>` obtained from [`intern`]: structurally equal expressions
//! share one allocation, constraint clones are reference-count bumps,
//! and equality / hashing collapse to an id comparison instead of
//! walking coefficient vectors.
//!
//! # Id soundness
//!
//! The store keeps only [`Weak`] references, bucketed by a deterministic
//! content hash across a fixed number of shards. Interning takes the
//! shard lock, so for any expression content at most one live `Row`
//! exists at a time: a second `intern` of equal content returns the
//! existing `Arc` while it is alive. Therefore, for *live* rows,
//! `id` equality coincides with content equality — which is what makes
//! `#[derive(PartialEq, Eq, Hash)]` on types containing `Arc<Row>`
//! behave exactly like the old content-comparing derives.
//!
//! Once every strong reference to a row dies, re-interning the same
//! content mints a fresh id. Any map entry keyed by the dead id is then
//! simply unreachable — a missed memo hit, never a wrong one. Long-lived
//! caches avoid even that by holding `Arc<Row>`s in their keys, pinning
//! the rows (and so the ids) alive. Ids are process-local and must never
//! be serialized; the persistent cache writes expression *content* and
//! re-interns on load.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::linexpr::LinExpr;

/// An interned, immutable constraint expression.
#[derive(Debug)]
pub(crate) struct Row {
    pub(crate) expr: LinExpr,
    /// Unique among live rows; equal content ⇔ equal id (see module docs).
    id: u64,
}

impl PartialEq for Row {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Row {}

impl Hash for Row {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

const SHARD_COUNT: usize = 16;

type Shard = Mutex<HashMap<u64, Vec<Weak<Row>>>>;

fn store() -> &'static [Shard; SHARD_COUNT] {
    static STORE: OnceLock<[Shard; SHARD_COUNT]> = OnceLock::new();
    STORE.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashMap::new())))
}

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Deterministic FNV-1a content hash over the dense coefficient vector
/// and the constant. Only used to pick a shard bucket — never exposed —
/// so it need not match any `std` hasher.
fn content_hash(expr: &LinExpr) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: i64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (v, c) in expr.terms() {
        mix(i64::from(v.index() as u32));
        mix(c);
    }
    mix(expr.constant());
    h
}

/// Interns `expr`: returns the existing live row of equal content, or
/// allocates a fresh one with a new id. Dead weak entries in the visited
/// bucket are pruned in passing.
pub(crate) fn intern(expr: LinExpr) -> Arc<Row> {
    let hash = content_hash(&expr);
    let shard = &store()[(hash as usize) & (SHARD_COUNT - 1)];
    let mut map = shard.lock().expect("row store poisoned");
    let bucket = map.entry(hash).or_default();
    let mut found = None;
    bucket.retain(|weak| match weak.upgrade() {
        Some(row) => {
            if found.is_none() && row.expr == expr {
                found = Some(row);
            }
            true
        }
        None => false,
    });
    if let Some(row) = found {
        return row;
    }
    let row = Arc::new(Row {
        expr,
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
    });
    bucket.push(Arc::downgrade(&row));
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarId;

    fn expr(c0: i64, k: i64) -> LinExpr {
        let mut e = LinExpr::constant_expr(k);
        e.set_coef(VarId::from_index(0), c0);
        e
    }

    #[test]
    fn equal_content_shares_one_row() {
        let a = intern(expr(3, -1));
        let b = intern(expr(3, -1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.id, b.id);
        let c = intern(expr(3, -2));
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn dead_rows_are_reclaimed_and_reminted() {
        let first = intern(expr(987_654, 321));
        let id = first.id;
        drop(first);
        // The content is gone from the store (only a dead weak remains),
        // so re-interning mints a fresh id.
        let second = intern(expr(987_654, 321));
        assert_ne!(second.id, id);
    }

    #[test]
    fn live_rows_survive_unrelated_interning() {
        let keep = intern(expr(11, 22));
        let id = keep.id;
        for i in 0..100 {
            let _ = intern(expr(i, i));
        }
        let again = intern(expr(11, 22));
        assert_eq!(again.id, id);
        assert!(Arc::ptr_eq(&keep, &again));
    }

    #[test]
    fn concurrent_interning_converges() {
        // Every thread holds its rows alive until all are compared, so
        // identical content must have resolved to one shared allocation.
        let per_thread: Vec<Vec<Arc<Row>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| (0..64).map(|i| intern(expr(i, -1000 - i))).collect::<Vec<_>>())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for later in &per_thread[1..] {
            for (a, b) in per_thread[0].iter().zip(later) {
                assert!(Arc::ptr_eq(a, b));
            }
        }
    }
}
