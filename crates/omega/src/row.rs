//! Hash-consed constraint rows.
//!
//! Every [`Constraint`](crate::Constraint) holds its expression as an
//! `Arc<Row>` obtained from [`intern`]: structurally equal expressions
//! share one allocation, constraint clones are reference-count bumps,
//! and equality / hashing collapse to an id comparison instead of
//! walking coefficient vectors.
//!
//! # Id soundness
//!
//! The store keeps only [`Weak`] references, bucketed by a deterministic
//! content hash across a fixed number of shards. Interning takes the
//! shard lock, so for any expression content at most one live `Row`
//! exists at a time: a second `intern` of equal content returns the
//! existing `Arc` while it is alive. Therefore, for *live* rows,
//! `id` equality coincides with content equality — which is what makes
//! `#[derive(PartialEq, Eq, Hash)]` on types containing `Arc<Row>`
//! behave exactly like the old content-comparing derives.
//!
//! Once every strong reference to a row dies, re-interning the same
//! content mints a fresh id. Any map entry keyed by the dead id is then
//! simply unreachable — a missed memo hit, never a wrong one. Long-lived
//! caches avoid even that by holding `Arc<Row>`s in their keys, pinning
//! the rows (and so the ids) alive. Ids are process-local and must never
//! be serialized; the persistent cache writes expression *content* and
//! re-interns on load.
//!
//! # Garbage collection
//!
//! A dead row leaves a dead [`Weak`] entry in its bucket. Interning
//! prunes the bucket it lands in, but a bucket never revisited would
//! keep its dead entries forever — a real leak in a long-lived process
//! (e.g. `tinydep --serve`) whose working set shifts between requests.
//! Two mechanisms bound that residue:
//!
//! * every row drop bumps a global dead-entry hint; once the hint
//!   crosses [`GC_DEAD_THRESHOLD`], the next [`intern`] sweeps **all**
//!   shards (after releasing its own shard lock), pruning every dead
//!   entry and dropping emptied buckets;
//! * [`gc`] runs the same sweep on demand — a server calls it between
//!   requests, and [`stats`] reports the residue so soak tests can
//!   assert it stays bounded.
//!
//! The sweep only removes entries that can no longer be upgraded, so it
//! is invisible to interning semantics: ids, sharing, and determinism
//! are unaffected; only memory is reclaimed.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::linexpr::LinExpr;

/// An interned, immutable constraint expression.
#[derive(Debug)]
pub(crate) struct Row {
    pub(crate) expr: LinExpr,
    /// Unique among live rows; equal content ⇔ equal id (see module docs).
    id: u64,
}

impl PartialEq for Row {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Row {}

impl Hash for Row {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl Drop for Row {
    fn drop(&mut self) {
        // The store's weak entry for this row just went dead. The hint
        // overcounts when a later intern prunes the entry in passing —
        // harmless: it only schedules a sweep that finds less to do.
        DEAD_HINT.fetch_add(1, Ordering::Relaxed);
    }
}

const SHARD_COUNT: usize = 16;

/// Row drops tolerated before an intern triggers a full-store sweep.
/// Crossing it costs one O(store) scan per `GC_DEAD_THRESHOLD` drops —
/// amortized O(1) per drop — and bounds resident dead entries.
const GC_DEAD_THRESHOLD: usize = 4096;

type Shard = Mutex<HashMap<u64, Vec<Weak<Row>>>>;

fn store() -> &'static [Shard; SHARD_COUNT] {
    static STORE: OnceLock<[Shard; SHARD_COUNT]> = OnceLock::new();
    STORE.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashMap::new())))
}

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Approximate count of dead weak entries resident in the store: bumped
/// by every row drop, reset by sweeps, decremented by in-passing prunes.
static DEAD_HINT: AtomicUsize = AtomicUsize::new(0);
/// Total [`intern`] calls.
static INTERNS: AtomicU64 = AtomicU64::new(0);
/// Interns resolved to an existing live row (shared, not minted).
static SHARED: AtomicU64 = AtomicU64::new(0);
/// Mints into a bucket that held a dead entry of the same content hash —
/// almost certainly a re-mint of content that died earlier.
static REMINTED: AtomicU64 = AtomicU64::new(0);
/// Full-store sweeps run (threshold-triggered or explicit).
static SWEEPS: AtomicU64 = AtomicU64::new(0);
/// Dead weak entries removed by sweeps (in-passing prunes not counted).
static SWEPT: AtomicU64 = AtomicU64::new(0);

/// Deterministic FNV-1a content hash over the dense coefficient vector
/// and the constant. Only used to pick a shard bucket — never exposed —
/// so it need not match any `std` hasher.
fn content_hash(expr: &LinExpr) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: i64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (v, c) in expr.terms() {
        mix(i64::from(v.index() as u32));
        mix(c);
    }
    mix(expr.constant());
    h
}

/// Interns `expr`: returns the existing live row of equal content, or
/// allocates a fresh one with a new id. Dead weak entries in the visited
/// bucket are pruned in passing; when the store-wide dead residue
/// crosses [`GC_DEAD_THRESHOLD`], every shard is swept (see the module
/// docs on garbage collection).
pub(crate) fn intern(expr: LinExpr) -> Arc<Row> {
    INTERNS.fetch_add(1, Ordering::Relaxed);
    let hash = content_hash(&expr);
    let shard = &store()[(hash as usize) & (SHARD_COUNT - 1)];
    let mut map = shard.lock().expect("row store poisoned");
    let bucket = map.entry(hash).or_default();
    let mut found = None;
    let mut pruned = 0usize;
    bucket.retain(|weak| match weak.upgrade() {
        Some(row) => {
            if found.is_none() && row.expr == expr {
                found = Some(row);
            }
            true
        }
        None => {
            pruned += 1;
            false
        }
    });
    if pruned > 0 {
        // Keep the hint honest so in-passing prunes don't leave it
        // permanently above threshold (which would sweep on every call).
        let mut cur = DEAD_HINT.load(Ordering::Relaxed);
        while cur > 0 {
            match DEAD_HINT.compare_exchange_weak(
                cur,
                cur.saturating_sub(pruned),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }
    if let Some(row) = found {
        SHARED.fetch_add(1, Ordering::Relaxed);
        return row;
    }
    if pruned > 0 {
        REMINTED.fetch_add(1, Ordering::Relaxed);
    }
    let row = Arc::new(Row {
        expr,
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
    });
    bucket.push(Arc::downgrade(&row));
    drop(map);
    if DEAD_HINT.load(Ordering::Relaxed) >= GC_DEAD_THRESHOLD {
        gc();
    }
    row
}

/// Sweeps every shard, pruning dead weak entries and dropping emptied
/// buckets. Returns the number of entries removed. Safe to call at any
/// time from any thread; shard locks are taken one at a time, never
/// while holding another.
pub fn gc() -> usize {
    let mut removed = 0usize;
    for shard in store() {
        let mut map = shard.lock().expect("row store poisoned");
        for bucket in map.values_mut() {
            bucket.retain(|weak| {
                let live = weak.strong_count() > 0;
                if !live {
                    removed += 1;
                }
                live
            });
        }
        map.retain(|_, bucket| !bucket.is_empty());
    }
    SWEEPS.fetch_add(1, Ordering::Relaxed);
    SWEPT.fetch_add(removed as u64, Ordering::Relaxed);
    // Resetting (rather than subtracting `removed`) forgives the hint's
    // overcount from entries that were pruned in passing after their
    // drop was already counted.
    DEAD_HINT.store(0, Ordering::Relaxed);
    removed
}

/// Occupancy of one shard of the row store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowShardStats {
    /// Non-empty hash buckets resident in the shard.
    pub buckets: usize,
    /// Entries whose row is still alive.
    pub live: usize,
    /// Dead weak entries not yet pruned.
    pub dead: usize,
}

/// A point-in-time snapshot of the row store: occupancy (scanned now)
/// plus cumulative counters since process start.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowStoreStats {
    /// Rows minted since process start (monotonic).
    pub built: u64,
    /// Rows currently alive in the store.
    pub live: usize,
    /// Dead weak entries currently resident (pending prune/sweep).
    pub dead: usize,
    /// Total intern calls.
    pub interns: u64,
    /// Interns that returned an existing live row instead of minting.
    pub shared: u64,
    /// Mints into a bucket holding a dead entry of the same content
    /// hash — re-mints of content that died earlier, up to hash
    /// collisions (the hash covers the full content, so collisions are
    /// negligible; treat this as a rate, not an exact census).
    pub reminted: u64,
    /// Full-store GC sweeps run.
    pub sweeps: u64,
    /// Dead entries removed by sweeps.
    pub swept: u64,
    /// Per-shard occupancy, `SHARD_COUNT` entries.
    pub shards: Vec<RowShardStats>,
}

impl RowStoreStats {
    /// Interns served by an existing row, in `[0, 1]`.
    pub fn share_rate(&self) -> f64 {
        if self.interns == 0 {
            0.0
        } else {
            self.shared as f64 / self.interns as f64
        }
    }

    /// Mints that re-created previously dead content, in `[0, 1]`.
    pub fn remint_rate(&self) -> f64 {
        if self.built == 0 {
            0.0
        } else {
            self.reminted as f64 / self.built as f64
        }
    }
}

/// Scans the store and returns current occupancy plus the cumulative
/// counters. O(store); meant for `--stats`, the server `stats` request,
/// and soak assertions — not for hot paths.
pub fn stats() -> RowStoreStats {
    let mut shards = Vec::with_capacity(SHARD_COUNT);
    let (mut live, mut dead) = (0usize, 0usize);
    for shard in store() {
        let map = shard.lock().expect("row store poisoned");
        let mut s = RowShardStats {
            buckets: map.len(),
            ..RowShardStats::default()
        };
        for bucket in map.values() {
            for weak in bucket {
                if weak.strong_count() > 0 {
                    s.live += 1;
                } else {
                    s.dead += 1;
                }
            }
        }
        live += s.live;
        dead += s.dead;
        shards.push(s);
    }
    RowStoreStats {
        built: NEXT_ID.load(Ordering::Relaxed),
        live,
        dead,
        interns: INTERNS.load(Ordering::Relaxed),
        shared: SHARED.load(Ordering::Relaxed),
        reminted: REMINTED.load(Ordering::Relaxed),
        sweeps: SWEEPS.load(Ordering::Relaxed),
        swept: SWEPT.load(Ordering::Relaxed),
        shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarId;

    fn expr(c0: i64, k: i64) -> LinExpr {
        let mut e = LinExpr::constant_expr(k);
        e.set_coef(VarId::from_index(0), c0);
        e
    }

    #[test]
    fn equal_content_shares_one_row() {
        let a = intern(expr(3, -1));
        let b = intern(expr(3, -1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.id, b.id);
        let c = intern(expr(3, -2));
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn dead_rows_are_reclaimed_and_reminted() {
        let first = intern(expr(987_654, 321));
        let id = first.id;
        drop(first);
        // The content is gone from the store (only a dead weak remains),
        // so re-interning mints a fresh id.
        let second = intern(expr(987_654, 321));
        assert_ne!(second.id, id);
    }

    #[test]
    fn live_rows_survive_unrelated_interning() {
        let keep = intern(expr(11, 22));
        let id = keep.id;
        for i in 0..100 {
            let _ = intern(expr(i, i));
        }
        let again = intern(expr(11, 22));
        assert_eq!(again.id, id);
        assert!(Arc::ptr_eq(&keep, &again));
    }

    /// Live + dead entry counts in the bucket `expr` hashes to, or
    /// `None` when the bucket itself has been dropped.
    fn bucket_occupancy(expr: &LinExpr) -> Option<(usize, usize)> {
        let hash = content_hash(expr);
        let shard = &store()[(hash as usize) & (SHARD_COUNT - 1)];
        let map = shard.lock().unwrap();
        map.get(&hash).map(|bucket| {
            let live = bucket.iter().filter(|w| w.strong_count() > 0).count();
            (live, bucket.len() - live)
        })
    }

    #[test]
    fn explicit_gc_prunes_a_bucket_that_is_never_revisited() {
        // A dead entry in a bucket no later intern lands in used to leak
        // until process exit; gc() must reclaim it.
        let probe = expr(0x5eed_cafe, -77_001);
        drop(intern(probe.clone()));
        // The dead entry may linger or may already have been swept by a
        // concurrent test's gc; in either case, after an explicit gc the
        // bucket must be gone (gc drops emptied buckets).
        gc();
        assert_eq!(bucket_occupancy(&probe), None);
        // A live row, by contrast, survives any number of sweeps.
        let keep = intern(expr(0x5eed_cafe, -77_002));
        gc();
        assert_eq!(bucket_occupancy(&expr(0x5eed_cafe, -77_002)), Some((1, 0)));
        drop(keep);
    }

    #[test]
    fn dead_residue_triggers_an_automatic_sweep() {
        // Plant a dead entry, then churn enough unique rows that the
        // dead-hint threshold is crossed; the sweep an intern triggers
        // must prune the planted bucket even though nothing ever hashes
        // into it again.
        let probe = expr(0x0dd_ba11, -88_001);
        drop(intern(probe.clone()));
        for i in 0..(GC_DEAD_THRESHOLD as i64 + 256) {
            drop(intern(expr(0x0dd_ba11 + 7 * (i + 2), -88_002 - i)));
        }
        assert_eq!(
            bucket_occupancy(&probe),
            None,
            "dead bucket survived {} churn interns",
            GC_DEAD_THRESHOLD + 256
        );
        assert!(stats().sweeps >= 1);
    }

    #[test]
    fn stats_track_occupancy_and_sharing() {
        let before = stats();
        let a = intern(expr(0x57a7_0001, -99_003));
        let b = intern(expr(0x57a7_0001, -99_003)); // shared, not minted
        let c = intern(expr(0x57a7_0002, -99_004));
        let after = stats();
        assert!(after.interns >= before.interns + 3);
        assert!(after.shared >= before.shared + 1);
        assert!(after.built >= before.built + 2);
        assert!(after.live >= 2, "live rows under-counted: {}", after.live);
        assert_eq!(after.shards.len(), SHARD_COUNT);
        let shard_live: usize = after.shards.iter().map(|s| s.live).sum();
        assert_eq!(shard_live, after.live);
        assert!(after.share_rate() > 0.0 && after.share_rate() <= 1.0);
        drop((a, b, c));
    }

    #[test]
    fn reminting_dead_content_is_counted() {
        let probe = expr(0x4e11_1111, -66_123);
        drop(intern(probe.clone()));
        let before = stats().reminted;
        // Same content, same bucket, dead entry still resident unless a
        // sweep raced us — in which case this interns fresh and the
        // counter may not move; assert monotonicity only plus the strong
        // case when no sweep intervened.
        let swept_before = stats().sweeps;
        let _again = intern(probe.clone());
        let after = stats();
        if after.sweeps == swept_before {
            assert!(after.reminted >= before + 1, "re-mint not counted");
        }
        assert!(after.remint_rate() <= 1.0);
    }

    #[test]
    fn concurrent_interning_converges() {
        // Every thread holds its rows alive until all are compared, so
        // identical content must have resolved to one shared allocation.
        let per_thread: Vec<Vec<Arc<Row>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| (0..64).map(|i| intern(expr(i, -1000 - i))).collect::<Vec<_>>())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for later in &per_thread[1..] {
            for (a, b) in per_thread[0].iter().zip(later) {
                assert!(Arc::ptr_eq(a, b));
            }
        }
    }
}
