//! Error type for the solver.

use std::fmt;

/// Errors surfaced by Omega-test operations.
///
/// The solver never panics on valid inputs: coefficient growth and
/// combinatorial explosion are reported through this type instead.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Intermediate arithmetic exceeded `i64`.
    Overflow,
    /// The search exceeded its work budget (e.g. pathological splintering).
    TooComplex {
        /// The budget (in elementary solver steps) that was exhausted.
        budget: usize,
    },
    /// An operation mixed problems with incompatible variable tables.
    SpaceMismatch,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Overflow => write!(f, "integer overflow in constraint arithmetic"),
            Error::TooComplex { budget } => {
                write!(f, "work budget of {budget} solver steps exhausted")
            }
            Error::SpaceMismatch => {
                write!(f, "operands do not share a variable table")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        for e in [
            Error::Overflow,
            Error::TooComplex { budget: 10 },
            Error::SpaceMismatch,
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
