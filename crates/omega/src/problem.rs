//! The central [`Problem`] type: a conjunction of linear equalities and
//! inequalities over a table of integer variables.

use std::sync::Arc;

use crate::cache::SolverCache;
use crate::int::Coef;
use crate::linexpr::{Color, Constraint, LinExpr, Relation};
use crate::symbol::Name;
use crate::var::{VarId, VarInfo, VarKind};
use crate::{Error, Result};

/// Solver switches, mostly for ablation studies: the defaults are the
/// algorithms the paper describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverOptions {
    /// Use the dark shadow as a satisfiability fast path (§3.1). Disabling
    /// it forces splinter enumeration whenever elimination is inexact —
    /// the ablation that shows why the dark shadow matters.
    pub dark_shadow: bool,
    /// Run the quick syntactic redundancy pass on projection results.
    pub quick_redundancy: bool,
    /// Consult the canonical-form memo cache (when one is attached to the
    /// [`Budget`] via [`Budget::with_cache`]). Off means every query runs
    /// cold even with a cache attached.
    pub memo_cache: bool,
    /// Run the solver inner loop on the dense scratch tableau instead of
    /// the interned-row pipeline. The two paths produce identical
    /// verdicts, projections, budget spends, and errors — this switch
    /// exists for the `ablation/tableau_vs_rows` benchmarks and for
    /// differential testing.
    pub dense_kernel: bool,
    /// On a delta-query memo miss, resume from the base problem's
    /// checkpointed tableau (normalize + equality elimination replayed
    /// onto the delta constraints) instead of re-solving `base ∧ delta`
    /// from scratch. Observationally invisible: verdicts, projections,
    /// budget spends, and errors are identical with the switch on or
    /// off — it exists for the `ablation/checkpoint_vs_scratch`
    /// benchmarks and for differential testing. Requires
    /// [`SolverOptions::dense_kernel`].
    pub base_checkpoint: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            dark_shadow: true,
            quick_redundancy: true,
            memo_cache: true,
            dense_kernel: true,
            base_checkpoint: true,
        }
    }
}

/// A work budget threaded through recursive solver routines so pathological
/// inputs fail cleanly with [`Error::TooComplex`] instead of diverging.
/// Also carries the [`SolverOptions`] for the run.
#[derive(Debug, Clone)]
pub struct Budget {
    remaining: usize,
    initial: usize,
    pub(crate) options: SolverOptions,
    cache: Option<Arc<SolverCache>>,
}

impl Budget {
    /// A budget of `steps` elementary solver operations.
    pub fn new(steps: usize) -> Self {
        Budget {
            remaining: steps,
            initial: steps,
            options: SolverOptions::default(),
            cache: None,
        }
    }

    /// Replaces the solver options (ablation switches).
    #[must_use]
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a shared memo cache, consulted by the sat/project/gist
    /// entry points while [`SolverOptions::memo_cache`] is on. Cached
    /// results are charged against this budget at their cold cost, so
    /// budget behavior is identical with and without the cache.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<SolverCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The active solver options.
    pub fn options(&self) -> SolverOptions {
        self.options
    }

    /// Steps left before [`Error::TooComplex`].
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The attached cache, if caching is both attached and enabled.
    pub(crate) fn active_cache(&self) -> Option<Arc<SolverCache>> {
        if self.options.memo_cache {
            self.cache.clone()
        } else {
            None
        }
    }

    /// Removes the cache (used while computing a miss, so nested queries
    /// run cold and recorded costs stay schedule-independent).
    pub(crate) fn detach_cache(&mut self) -> Option<Arc<SolverCache>> {
        self.cache.take()
    }

    /// Restores a cache removed by [`Budget::detach_cache`].
    pub(crate) fn attach_cache(&mut self, cache: Option<Arc<SolverCache>>) {
        self.cache = cache;
    }

    /// Consumes `n` steps.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooComplex`] once the budget is exhausted.
    pub fn spend(&mut self, n: usize) -> Result<()> {
        if self.remaining < n {
            Err(Error::TooComplex {
                budget: self.initial,
            })
        } else {
            self.remaining -= n;
            Ok(())
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::new(DEFAULT_BUDGET)
    }
}

/// Default work budget for the convenience entry points.
pub const DEFAULT_BUDGET: usize = 2_000_000;

/// A conjunction of linear equalities (`expr == 0`) and inequalities
/// (`expr >= 0`) over integer variables.
///
/// This is the object the Omega test manipulates: satisfiability asks
/// whether the conjunction has an *integer* solution; projection computes
/// its exact shadow on a subset of the variables; gists compute the new
/// information in one problem relative to another.
///
/// # Examples
///
/// ```
/// use omega::{LinExpr, Problem, VarKind};
///
/// // 0 <= a <= 5  and  b < a <= 5b  has integer solutions (e.g. a=2, b=1).
/// let mut p = Problem::new();
/// let a = p.add_var("a", VarKind::Input);
/// let b = p.add_var("b", VarKind::Input);
/// p.add_geq(LinExpr::var(a));                                   // a >= 0
/// p.add_geq(LinExpr::term(-1, a).plus_const(5));                // a <= 5
/// p.add_geq(LinExpr::var(a).plus_term(-1, b).plus_const(-1));   // a >= b+1
/// p.add_geq(LinExpr::term(5, b).plus_term(-1, a));              // 5b >= a
/// assert!(p.is_satisfiable()?);
/// # Ok::<(), omega::Error>(())
/// ```
/// The variable table is shared copy-on-write (`Arc`): cloning a problem
/// — which the solver does constantly while projecting and splintering —
/// bumps a reference count instead of copying the table, and the
/// constraint lists clone as reference-count bumps on interned rows. The
/// first mutation of a shared table copies it (see [`Problem::vars_mut`]).
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) vars: Arc<Vec<VarInfo>>,
    pub(crate) eqs: Vec<Constraint>,
    pub(crate) geqs: Vec<Constraint>,
    /// Set when normalization discovers a constant contradiction.
    pub(crate) known_infeasible: bool,
}

impl Problem {
    /// An empty (trivially true) problem over no variables.
    pub fn new() -> Self {
        Problem::default()
    }

    /// Mutable access to the variable table, copying it first if it is
    /// shared with other problems (copy-on-write).
    pub(crate) fn vars_mut(&mut self) -> &mut Vec<VarInfo> {
        Arc::make_mut(&mut self.vars)
    }

    /// Adds a variable and returns its id.
    pub fn add_var(&mut self, name: impl AsRef<str>, kind: VarKind) -> VarId {
        self.push_var(Name::from_str(name.as_ref(), kind), kind)
    }

    /// Adds a variable whose name is already interned.
    pub(crate) fn push_var(&mut self, name: Name, kind: VarKind) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars_mut().push(VarInfo {
            name,
            kind,
            protected: false,
            dead: false,
            pinned: false,
        });
        id
    }

    /// Adds an internal existential variable. The name is the interned
    /// wildcard `alpha<index>` — no string is built unless it is rendered.
    pub(crate) fn add_wildcard(&mut self) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars_mut().push(VarInfo {
            name: Name::Wild(id.0),
            kind: VarKind::Wildcard,
            protected: false,
            dead: false,
            pinned: false,
        });
        id
    }

    /// Number of variables ever added (including dead ones).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Information about a variable.
    pub fn var_info(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// All variable ids, including dead ones.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId::from_index)
    }

    /// Looks up a variable by name (first match).
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name.render() == name)
            .map(VarId::from_index)
    }

    /// Marks a variable protected: it will survive projection.
    pub fn set_protected(&mut self, v: VarId, protected: bool) {
        self.vars_mut()[v.index()].protected = protected;
    }

    /// Whether `v` is protected. Columns past the table (imported from a
    /// wider space) behave as unprotected wildcards.
    pub fn is_protected(&self, v: VarId) -> bool {
        self.vars.get(v.index()).is_some_and(|i| i.protected)
    }

    pub(crate) fn is_dead(&self, v: VarId) -> bool {
        self.vars.get(v.index()).is_some_and(|i| i.dead)
    }

    pub(crate) fn mark_dead(&mut self, v: VarId) {
        self.ensure_var(v);
        self.vars_mut()[v.index()].dead = true;
    }

    /// Widens the table with anonymous wildcards so `v` is addressable
    /// (constraints imported from a wider space may mention such columns).
    pub(crate) fn ensure_var(&mut self, v: VarId) {
        while self.vars.len() <= v.index() {
            self.add_wildcard();
        }
    }

    pub(crate) fn is_pinned(&self, v: VarId) -> bool {
        self.vars.get(v.index()).is_some_and(|i| i.pinned)
    }

    pub(crate) fn mark_pinned(&mut self, v: VarId) {
        self.ensure_var(v);
        self.vars_mut()[v.index()].pinned = true;
    }

    /// Adds the equality `expr == 0`.
    pub fn add_eq(&mut self, expr: LinExpr) {
        self.eqs.push(Constraint::eq(expr));
    }

    /// Adds the inequality `expr >= 0`.
    pub fn add_geq(&mut self, expr: LinExpr) {
        self.geqs.push(Constraint::geq(expr));
    }

    /// Adds an arbitrary constraint, keeping its color.
    pub fn add_constraint(&mut self, c: Constraint) {
        match c.rel {
            Relation::Zero => self.eqs.push(c),
            Relation::NonNegative => self.geqs.push(c),
        }
    }

    /// Adds `lhs >= rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] on coefficient overflow.
    pub fn constrain_ge(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> Result<()> {
        self.geqs.push(Constraint::geq(lhs.combine(1, -1, rhs)?));
        Ok(())
    }

    /// Adds `lhs <= rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] on coefficient overflow.
    pub fn constrain_le(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> Result<()> {
        self.geqs.push(Constraint::geq(rhs.combine(1, -1, lhs)?));
        Ok(())
    }

    /// Adds `lhs < rhs` (i.e. `rhs - lhs - 1 >= 0`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] on coefficient overflow.
    pub fn constrain_lt(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> Result<()> {
        let mut e = rhs.combine(1, -1, lhs)?;
        e.add_constant(-1)?;
        self.geqs.push(Constraint::geq(e));
        Ok(())
    }

    /// Adds `lhs == rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] on coefficient overflow.
    pub fn constrain_eq(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> Result<()> {
        self.eqs.push(Constraint::eq(lhs.combine(1, -1, rhs)?));
        Ok(())
    }

    /// The equality constraints.
    pub fn eqs(&self) -> &[Constraint] {
        &self.eqs
    }

    /// The inequality constraints.
    pub fn geqs(&self) -> &[Constraint] {
        &self.geqs
    }

    /// Total number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.eqs.len() + self.geqs.len()
    }

    /// True when the problem has no constraints (and is therefore a
    /// tautology).
    pub fn is_trivially_true(&self) -> bool {
        !self.known_infeasible && self.eqs.is_empty() && self.geqs.is_empty()
    }

    /// True when normalization has already discovered a contradiction.
    pub fn is_known_infeasible(&self) -> bool {
        self.known_infeasible
    }

    /// A process-local digest of this problem's canonical form.
    ///
    /// Two problems stating the same conjunction over the same variable
    /// table digest equally, regardless of constraint insertion order,
    /// exact duplicates, GCD scaling, equality sign, or whether their
    /// constraints were built fresh or cloned from another problem.
    ///
    /// Unlike the in-memory memo keys, which hash interned row *ids*,
    /// the digest hashes canonical *content*: the rows canonicalization
    /// mints (e.g. a GCD-reduced inequality) are temporaries that die
    /// with this call, so a later digest of an equivalent problem would
    /// see them re-interned under fresh ids. Variable names still enter
    /// as interned symbols, so the value is only comparable within one
    /// process and must never be persisted.
    pub fn canonical_digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let canon = crate::canon::canonicalize(self);
        let mut h = DefaultHasher::new();
        canon.known_infeasible.hash(&mut h);
        canon.vars.hash(&mut h);
        for list in [&canon.eqs, &canon.geqs] {
            list.len().hash(&mut h);
            for c in list {
                c.relation().hash(&mut h);
                c.color().hash(&mut h);
                c.expr().constant().hash(&mut h);
                for (v, coef) in c.expr().terms() {
                    (v.index(), coef).hash(&mut h);
                }
                // Terminator: keeps adjacent constraints' terms from
                // hashing identically under different groupings.
                usize::MAX.hash(&mut h);
            }
        }
        h.finish()
    }

    /// The canonical form of this problem: same variable table,
    /// GCD-reduced constraints, sorted and deduplicated constraint
    /// lists — the form the memo cache keys on and computes cached
    /// projections and gists against.
    ///
    /// Two problems with equal [`canonical_digest`](Self::canonical_digest)s
    /// canonicalize to byte-identical problems, so any *derived* output
    /// (a projection, a gist, a rendering) computed from the canonical
    /// form is stable across construction paths. Use this at render
    /// boundaries when the output of an order-sensitive algorithm
    /// (Fourier–Motzkin projection, gist) must not leak how the input
    /// problem happened to be assembled.
    pub fn canonicalized(&self) -> Problem {
        crate::canon::canonicalize(self)
    }

    /// Whether two problems share a variable table (names and kinds agree
    /// on the common prefix; one table may extend the other with
    /// wildcards).
    pub fn same_space(&self, other: &Problem) -> bool {
        let n = self.vars.len().min(other.vars.len());
        self.vars[..n].iter().zip(&other.vars[..n]).all(|(a, b)| {
            a.name == b.name
                && (a.kind == b.kind
                    // Projection may demote a variable to an existential
                    // (wildcard); the tables remain compatible.
                    || a.kind == VarKind::Wildcard
                    || b.kind == VarKind::Wildcard)
        }) && self.vars[n..].iter().all(|v| v.kind == VarKind::Wildcard)
            && other.vars[n..].iter().all(|v| v.kind == VarKind::Wildcard)
    }

    /// Extends this problem's variable table with any extra (wildcard)
    /// variables of `other`, without copying constraints. Needed before
    /// mixing constraints from a projection result (which may have
    /// introduced wildcards) into formulas over this problem's space.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] if the tables are incompatible.
    pub fn extend_space_to(&mut self, other: &Problem) -> Result<()> {
        if !self.same_space(other) {
            return Err(Error::SpaceMismatch);
        }
        self.import_extra_vars(other);
        Ok(())
    }

    /// Appends `other`'s surplus (wildcard) variables to this table.
    /// Callers have already established [`Problem::same_space`].
    fn import_extra_vars(&mut self, other: &Problem) {
        if self.vars.len() >= other.vars.len() {
            return;
        }
        if self.vars.is_empty() {
            // Share the whole table instead of copying it.
            self.vars = Arc::clone(&other.vars);
            return;
        }
        let vars = self.vars_mut();
        vars.extend_from_slice(&other.vars[vars.len()..]);
    }

    /// Conjoins all constraints of `other` into `self`, recoloring them.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] if the problems do not share a
    /// variable table.
    pub fn and_colored(&mut self, other: &Problem, color: Color) -> Result<()> {
        if !self.same_space(other) {
            return Err(Error::SpaceMismatch);
        }
        self.import_extra_vars(other);
        for c in other.eqs.iter().chain(&other.geqs) {
            self.add_constraint(c.clone().with_color(color));
        }
        self.known_infeasible |= other.known_infeasible;
        Ok(())
    }

    /// Conjoins `other` into `self`, keeping the original colors.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] if the problems do not share a
    /// variable table.
    pub fn and(&mut self, other: &Problem) -> Result<()> {
        if !self.same_space(other) {
            return Err(Error::SpaceMismatch);
        }
        self.import_extra_vars(other);
        for c in other.eqs.iter().chain(&other.geqs) {
            self.add_constraint(c.clone());
        }
        self.known_infeasible |= other.known_infeasible;
        Ok(())
    }

    /// Checks an explicit assignment (dense, indexed by variable) against
    /// every constraint. Useful for testing and for validating witnesses.
    pub fn satisfies(&self, values: &[Coef]) -> bool {
        !self.known_infeasible
            && self
                .eqs
                .iter()
                .chain(&self.geqs)
                .all(|c| c.holds(values))
    }

    /// Variables that are alive and actually appear in some constraint.
    pub(crate) fn occurring_vars(&self) -> Vec<VarId> {
        // Defensive: constraints imported from a wider space may mention
        // columns past the table; treat them as ordinary wildcards.
        let mut seen = vec![false; self.vars.len()];
        for c in self.eqs.iter().chain(&self.geqs) {
            for (v, _) in c.expr().terms() {
                if v.index() >= seen.len() {
                    seen.resize(v.index() + 1, false);
                }
                seen[v.index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(i, &s)| s && self.vars.get(i).is_none_or(|v| !v.dead))
            .map(|(i, _)| VarId::from_index(i))
            .collect()
    }

    /// Strips colors, turning every constraint black.
    pub fn blacken(&mut self) {
        for c in self.eqs.iter_mut().chain(self.geqs.iter_mut()) {
            c.color = Color::Black;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_problem() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let n = p.add_var("n", VarKind::Symbolic);
        p.constrain_ge(&LinExpr::var(x), &LinExpr::constant_expr(1))
            .unwrap();
        p.constrain_le(&LinExpr::var(x), &LinExpr::var(n)).unwrap();
        assert_eq!(p.num_constraints(), 2);
        assert_eq!(p.find_var("n"), Some(n));
        assert!(p.satisfies(&[3, 5]));
        assert!(!p.satisfies(&[0, 5]));
        assert!(!p.satisfies(&[6, 5]));
    }

    #[test]
    fn constrain_lt_is_strict_integer() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.constrain_lt(&LinExpr::var(x), &LinExpr::var(y)).unwrap();
        assert!(p.satisfies(&[1, 2]));
        assert!(!p.satisfies(&[2, 2]));
    }

    #[test]
    fn same_space_and_merge() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let mut q = Problem::new();
        let xq = q.add_var("x", VarKind::Input);
        assert_eq!(x, xq);
        q.add_geq(LinExpr::var(xq));
        assert!(p.same_space(&q));
        p.and_colored(&q, Color::Red).unwrap();
        assert_eq!(p.geqs().len(), 1);
        assert_eq!(p.geqs()[0].color(), Color::Red);

        let mut r = Problem::new();
        r.add_var("y", VarKind::Input);
        assert!(!p.same_space(&r));
        assert_eq!(p.and(&r), Err(Error::SpaceMismatch));
    }

    #[test]
    fn wildcard_extension_is_same_space() {
        let mut p = Problem::new();
        p.add_var("x", VarKind::Input);
        let mut q = p.clone();
        q.add_wildcard();
        assert!(p.same_space(&q));
        assert!(q.same_space(&p));
    }

    #[test]
    fn budget_exhausts() {
        let mut b = Budget::new(5);
        assert!(b.spend(3).is_ok());
        assert!(b.spend(2).is_ok());
        assert!(matches!(b.spend(1), Err(Error::TooComplex { budget: 5 })));
    }

    #[test]
    fn blacken_strips_colors() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_constraint(Constraint::geq(LinExpr::term(-1, x).plus_const(5)).with_color(Color::Red));
        p.blacken();
        assert_eq!(p.geqs()[0].color(), Color::Black);
    }
}
