//! Interned variable names.
//!
//! Variable tables used to store one heap `String` per variable, cloned
//! on every [`Problem`](crate::Problem) clone and re-hashed on every
//! canonical-key build. Names are now a two-word [`Name`]: either an
//! interned [`Symbol`] (an index into a global, append-only table of
//! leaked strings) or `Wild(n)` for the solver-introduced wildcard
//! `alpha<n>` — which is never formatted at all until something actually
//! renders it.
//!
//! Symbol ids are process-local: they are stable for the lifetime of the
//! process (the table only grows), so they are sound hash/equality keys
//! for in-memory maps, but they must never be serialized. Anything that
//! crosses the process boundary (the persistent cache, reports) renders
//! the name and re-interns on the way back in.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::var::VarKind;

/// An interned string: equality and hashing are id comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct Symbol(u32);

struct SymTab {
    ids: HashMap<&'static str, u32>,
    strs: Vec<&'static str>,
}

static TABLE: Mutex<Option<SymTab>> = Mutex::new(None);

impl Symbol {
    /// Interns `s`, leaking it into the global table on first sight.
    /// Distinct strings get distinct ids, so id equality is string
    /// equality.
    pub(crate) fn intern(s: &str) -> Symbol {
        let mut guard = TABLE.lock().expect("symbol table poisoned");
        let tab = guard.get_or_insert_with(|| SymTab {
            ids: HashMap::new(),
            strs: Vec::new(),
        });
        if let Some(&id) = tab.ids.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(tab.strs.len()).expect("symbol table exceeds u32 range");
        tab.strs.push(leaked);
        tab.ids.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub(crate) fn as_str(self) -> &'static str {
        let guard = TABLE.lock().expect("symbol table poisoned");
        guard
            .as_ref()
            .expect("symbol id without a table")
            .strs[self.0 as usize]
    }
}

/// A variable's name: an interned symbol, or the `n`-th wildcard
/// (`alpha<n>`), which needs no string at all until rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Name {
    Sym(Symbol),
    Wild(u32),
}

impl Name {
    /// Interns `s` as a name. Wildcard names of the canonical shape
    /// `alpha<n>` (no leading zeros) fold into [`Name::Wild`] so that a
    /// round trip through rendered text — e.g. the persistent cache —
    /// reproduces the same `Name` the solver built in memory.
    pub(crate) fn from_str(s: &str, kind: VarKind) -> Name {
        if kind == VarKind::Wildcard {
            if let Some(digits) = s.strip_prefix("alpha") {
                let canonical = digits == "0"
                    || (!digits.is_empty()
                        && !digits.starts_with('0')
                        && digits.bytes().all(|b| b.is_ascii_digit()));
                if canonical {
                    if let Ok(n) = digits.parse::<u32>() {
                        return Name::Wild(n);
                    }
                }
            }
        }
        Name::Sym(Symbol::intern(s))
    }

    /// The display form of the name. Wildcard strings are formatted once
    /// per index, process-wide, and memoized.
    pub(crate) fn render(self) -> &'static str {
        match self {
            Name::Sym(s) => s.as_str(),
            Name::Wild(n) => wild_str(n),
        }
    }
}

/// Memoized `alpha<n>` strings: rendering the same wildcard twice must
/// not allocate twice (reports render every variable of every problem).
fn wild_str(n: u32) -> &'static str {
    static MEMO: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut memo = MEMO.lock().expect("wildcard memo poisoned");
    while memo.len() <= n as usize {
        let s: &'static str = Box::leak(format!("alpha{}", memo.len()).into_boxed_str());
        memo.push(s);
    }
    memo[n as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("some_unique_symbol_name");
        let b = Symbol::intern("some_unique_symbol_name");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "some_unique_symbol_name");
        assert_ne!(a, Symbol::intern("another_symbol"));
    }

    #[test]
    fn canonical_wildcards_fold() {
        assert_eq!(Name::from_str("alpha7", VarKind::Wildcard), Name::Wild(7));
        assert_eq!(Name::from_str("alpha0", VarKind::Wildcard), Name::Wild(0));
        assert_eq!(Name::Wild(7).render(), "alpha7");
    }

    #[test]
    fn non_canonical_wildcard_names_stay_symbols() {
        // Leading zeros, non-digits, and non-wildcard kinds must not fold:
        // rendering must reproduce the original string exactly.
        for s in ["alpha07", "alpha", "alphax", "beta3"] {
            let n = Name::from_str(s, VarKind::Wildcard);
            assert!(matches!(n, Name::Sym(_)), "{s} must not fold");
            assert_eq!(n.render(), s);
        }
        let input = Name::from_str("alpha3", VarKind::Input);
        assert!(matches!(input, Name::Sym(_)));
        assert_eq!(input.render(), "alpha3");
    }

    #[test]
    fn render_round_trips_through_from_str() {
        for (s, kind) in [
            ("i", VarKind::Input),
            ("n", VarKind::Symbolic),
            ("alpha12", VarKind::Wildcard),
            ("alpha012", VarKind::Wildcard),
        ] {
            let n = Name::from_str(s, kind);
            assert_eq!(n.render(), s);
            assert_eq!(Name::from_str(n.render(), kind), n);
        }
    }
}
