//! A case study: everything the library says about LU decomposition.
//!
//! Walks the full API surface on one kernel — dependence tables, exact
//! distance sets, sign-pattern decompositions, parallelism, interchange
//! and symbolic conditions.
//!
//! Run with `cargo run --release --example lu_study`.

use depend::{
    analyze_program, dirvec, program_loops, Config, Legality, ReportOptions,
};
use omega::Budget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = tiny::Program::parse(tiny::corpus::LU)?;
    let info = tiny::analyze(&program)?;
    let analysis = analyze_program(&info, &Config::extended())?;
    let mut budget = Budget::default();

    println!("== LU decomposition ==");
    println!("{}", tiny::corpus::LU.trim());
    println!();

    // 1. The dependence tables.
    let opts = ReportOptions::default();
    println!("live flow dependences:");
    print!("{}", depend::live_flow_table(&depend::DepGraph::new(&info, &analysis), &opts));
    println!();

    // 2. Restraint vectors and sign patterns per dependence.
    println!("restraint vectors and sign decompositions:");
    for d in analysis.live_flows() {
        if d.common == 0 {
            continue;
        }
        let cases: Vec<String> = d
            .cases
            .iter()
            .map(|c| format!("{} {}", c.order, c.summary))
            .collect();
        println!(
            "  {} -> {}: {}",
            d.src.label,
            d.dst.label,
            cases.join(" | ")
        );
        for c in &d.cases {
            // The loop-independent restraint exists only when the source
            // is lexically first, so all-zero sign patterns are forward.
            let lex_first = c.order == depend::OrderCase::LoopIndependent;
            let vecs = dirvec::partially_compressed_direction_vectors(
                &c.problem,
                &c.src_vars.iters,
                &c.dst_vars.iters,
                d.common,
                lex_first,
                &mut budget,
            )?;
            let rendered: Vec<String> = vecs.iter().map(|v| v.to_string()).collect();
            println!("      signs({}): {{{}}}", c.order, rendered.join(", "));
        }
        // Exact distance sets, when finite.
        if let Some(dists) = d.enumerate_distances(16, &mut budget)? {
            println!("      distances: {dists:?}");
        }
    }
    println!();

    // 3. Transformation legality.
    let legality = Legality::new(&info, &analysis);
    println!("loop verdicts:");
    for l in program_loops(&info) {
        let parallel = legality.is_parallel(&l);
        let interchange = if l.depth == 1 {
            match legality.interchange_legal(&l, &mut budget) {
                Ok(ok) => {
                    if ok {
                        ", interchange with inner loop: legal"
                    } else {
                        ", interchange with inner loop: ILLEGAL"
                    }
                }
                Err(_) => "",
            }
        } else {
            ""
        };
        println!(
            "  {:<3} depth {}: {}{}",
            l.var,
            l.depth,
            if parallel { "PARALLEL" } else { "sequential" },
            interchange
        );
    }
    Ok(())
}
