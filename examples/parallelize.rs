//! The paper's motivation, end to end: find parallel loops and
//! privatization opportunities, and show how eliminating false flow
//! dependences changes the answer.
//!
//! Each program goes through the decision engine behind
//! `tinydep --parallelize` once; the engine's pre-kill view plays the
//! role of standard analysis, so one extended run yields both verdicts.
//! The last program prints the full annotated report.
//!
//! Run with `cargo run --example parallelize`.

use depend::{
    analyze_program, decide_loops, render_parallelize_report, Config, DepGraph, LoopVerdict,
    ParallelizeSummary,
};

fn verdict(v: &LoopVerdict) -> String {
    match &v.privatize {
        Some(arrays) if arrays.is_empty() => "PARALLEL".to_string(),
        Some(arrays) => format!(
            "PARALLEL after privatizing {}",
            arrays.iter().cloned().collect::<Vec<_>>().join(", ")
        ),
        None => "sequential".to_string(),
    }
}

fn report(name: &str, source: &str) -> Result<(), Box<dyn std::error::Error>> {
    let program = tiny::Program::parse(source)?;
    let info = tiny::analyze(&program)?;
    let analysis = analyze_program(&info, &Config::extended())?;
    let graph = DepGraph::new(&info, &analysis);
    let decisions = decide_loops(&graph);

    println!("== {name} ==");
    for d in &decisions {
        let unlocked = if d.newly_parallelizable() {
            "   <- unlocked by kill analysis"
        } else {
            ""
        };
        println!(
            "  loop {:<4} depth {}: without kills -> {:<34} with kills -> {}{}",
            d.l.var,
            d.l.depth,
            verdict(&d.pre),
            verdict(&d.post),
            unlocked
        );
    }
    println!("  {}", ParallelizeSummary::of(&decisions));
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Jacobi-style double-buffered stencil: the temporary `b` is fully
    // overwritten every time step, so the carried flow the standard
    // analysis sees is FALSE — the extended analysis kills it and `b`
    // becomes privatizable.
    report("double-buffered stencil", tiny::corpus::DOUBLE_BUFFER)?;

    // A per-iteration temporary: storage dependences on `t` block naive
    // parallelization, privatization fixes it.
    report(
        "blocked row transform with a temporary",
        "
        sym n, m;
        for i := 1 to n do
          for j := 1 to m do
            t(j) := a(i, j) * 2;
          endfor
          for j := 1 to m do
            b(i, j) := t(j) + t(j);
          endfor
        endfor
        ",
    )?;

    // Matrix multiply: outer two loops parallel, the reduction loop not.
    report("matrix multiply", tiny::corpus::MATMUL)?;

    // Gauss-Seidel: genuinely sequential everywhere.
    report("gauss-seidel sweep", tiny::corpus::SEIDEL)?;

    // The showcase: a stale pivot write after the read loop makes the
    // carried flow on `t` false; killing it is exactly what lets `t` be
    // privatized and the `i` loop run in parallel. Full report, as
    // `tinydep --parallelize` would print it.
    report("pivot reset (newly parallelizable)", tiny::corpus::PIVOT_RESET)?;
    let program = tiny::Program::parse(tiny::corpus::PIVOT_RESET)?;
    let info = tiny::analyze(&program)?;
    let analysis = analyze_program(&info, &Config::extended())?;
    let graph = DepGraph::new(&info, &analysis);
    print!("{}", render_parallelize_report(&program, &graph));
    Ok(())
}
