//! The paper's motivation, end to end: find parallel loops and
//! privatization opportunities, and show how eliminating false flow
//! dependences changes the answer.
//!
//! Run with `cargo run --example parallelize`.

use depend::{analyze_program, program_loops, Config, Legality};

fn report(name: &str, source: &str) -> Result<(), Box<dyn std::error::Error>> {
    let program = tiny::Program::parse(source)?;
    let info = tiny::analyze(&program)?;
    let std_analysis = analyze_program(&info, &Config::standard())?;
    let ext_analysis = analyze_program(&info, &Config::extended())?;
    let std_leg = Legality::new(&info, &std_analysis);
    let ext_leg = Legality::new(&info, &ext_analysis);

    println!("== {name} ==");
    for l in program_loops(&info) {
        let verdict = |leg: &Legality| {
            if leg.is_parallel(&l) {
                "PARALLEL".to_string()
            } else {
                match leg.parallel_with_privatization(&l) {
                    Some(arrays) if arrays.is_empty() => "PARALLEL".to_string(),
                    Some(arrays) => format!(
                        "PARALLEL after privatizing {}",
                        arrays.into_iter().collect::<Vec<_>>().join(", ")
                    ),
                    None => "sequential".to_string(),
                }
            }
        };
        println!(
            "  loop {:<4} depth {}: standard analysis -> {:<34} extended -> {}",
            l.var,
            l.depth,
            verdict(&std_leg),
            verdict(&ext_leg)
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Jacobi-style double-buffered stencil: the temporary `b` is fully
    // overwritten every time step, so the carried flow the standard
    // analysis sees is FALSE — the extended analysis kills it and `b`
    // becomes privatizable.
    report("double-buffered stencil", tiny::corpus::DOUBLE_BUFFER)?;

    // A per-iteration temporary: storage dependences on `t` block naive
    // parallelization, privatization fixes it.
    report(
        "blocked row transform with a temporary",
        "
        sym n, m;
        for i := 1 to n do
          for j := 1 to m do
            t(j) := a(i, j) * 2;
          endfor
          for j := 1 to m do
            b(i, j) := t(j) + t(j);
          endfor
        endfor
        ",
    )?;

    // Matrix multiply: outer two loops parallel, the reduction loop not.
    report("matrix multiply", tiny::corpus::MATMUL)?;

    // Gauss-Seidel: genuinely sequential everywhere.
    report("gauss-seidel sweep", tiny::corpus::SEIDEL)?;
    Ok(())
}
