//! The §5 symbolic-analysis dialog, scripted: Examples 7 and 8 of the
//! paper. Shows the conditions under which dependences exist and the
//! concise queries the compiler would pose to the user, then applies the
//! user's (scripted) answers.
//!
//! Run with `cargo run --example symbolic_dialog`.

use depend::{AccessSite, ArrayProperty, SymbolicPair};
use omega::Budget;
use tiny::ast::name_key;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut budget = Budget::default();

    // ---- Example 7: scalar symbolic conditions -------------------------
    println!("== Example 7 ==");
    let src = format!("assume 50 <= n <= 100;\n{}", tiny::corpus::EXAMPLE_7);
    let program = tiny::Program::parse(&src)?;
    let info = tiny::analyze(&program)?;
    let pair = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Read(0))?;
    let keep = pair.keep_vars(&["x", "y", "m"]);
    for c in pair.conditions(&info, &keep, &mut budget)? {
        println!("restraint {:?}:", c.order);
        println!("  condition: {}", c.condition);
        println!("  dialog:    {}", c.question());
    }

    // ---- Example 8: index arrays ---------------------------------------
    println!();
    println!("== Example 8 ==");
    let program = tiny::Program::parse(tiny::corpus::EXAMPLE_8)?;
    let info = tiny::analyze(&program)?;

    // Output dependence of A[Q[L1]] with itself.
    let pair = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Write)?;
    let mut keep = pair.occurrence_vars();
    keep.extend(pair.keep_vars(&["n"]));
    for c in pair.conditions(&info, &keep, &mut budget)? {
        println!("output dependence, restraint {:?}:", c.order);
        println!("  dialog: {}", c.question());
    }
    let gone = !pair.exists_with_property(&info, "q", ArrayProperty::Injective, &mut budget)?;
    println!(
        "user answers: Q is a permutation array (injective) -> output dependence {}",
        if gone { "RULED OUT" } else { "remains" }
    );

    // Flow dependence from the write to the read A[Q[L1+1]-1].
    let a_read = info
        .stmt(1)
        .reads
        .iter()
        .position(|r| name_key(&r.array) == "a")
        .expect("the A read");
    let pair = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Read(a_read))?;
    let mut keep = pair.occurrence_vars();
    keep.extend(pair.keep_vars(&["n"]));
    for c in pair.conditions(&info, &keep, &mut budget)? {
        println!("flow dependence, restraint {:?}:", c.order);
        println!("  dialog: {}", c.question());
    }
    let survives =
        pair.exists_with_property(&info, "q", ArrayProperty::StrictlyIncreasing, &mut budget)?;
    println!(
        "user answers: Q is strictly increasing -> flow dependence {}",
        if survives {
            "remains (Q[a] = Q[b]-1 is still possible)"
        } else {
            "RULED OUT"
        }
    );

    // ---- Example 11: induction scalar ----------------------------------
    println!();
    println!("== Example 11 (s141) ==");
    let program = tiny::Program::parse(tiny::corpus::EXAMPLE_11)?;
    let info = tiny::analyze(&program)?;
    let increasing = depend::increasing_scalars(&info, &mut budget)?;
    println!("strictly increasing scalars recognized: {increasing:?}");
    let a_read = info
        .stmt(1)
        .reads
        .iter()
        .position(|r| name_key(&r.array) == "a")
        .expect("the a(k) read");
    let pair = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Read(a_read))?;
    let carried = pair.exists_with_increasing_scalar(&info, "k", &mut budget)?;
    println!(
        "loop-carried dependence on a(k): {}",
        if carried {
            "assumed"
        } else {
            "NONE - s141 vectorizes"
        }
    );
    Ok(())
}
