//! Quickstart: parse a small loop nest, run the full dependence analysis,
//! and print every flow dependence with its distance vector and status.
//!
//! Run with `cargo run --example quickstart`.

use depend::{analyze_program, Config, ReportOptions};
use tiny::{analyze, Program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop nest with a false dependence: the write a(i) in statement 2
    // kills the value statement 1 stored there, so the read in statement 3
    // never sees statement 1's values.
    let source = "
        sym n;
        for i := 1 to n do
          a(i) := 0;
          a(i) := a(i) + b(i);
        endfor
        for i := 1 to n do
          c(i) := a(i);
        endfor
    ";
    let program = Program::parse(source)?;
    let info = analyze(&program)?;
    let analysis = analyze_program(&info, &Config::extended())?;

    let opts = ReportOptions::default();
    println!("live flow dependences:");
    print!("{}", depend::live_flow_table(&depend::DepGraph::new(&info, &analysis), &opts));
    println!();
    println!("dead flow dependences (eliminated false dependences):");
    print!("{}", depend::dead_flow_table(&depend::DepGraph::new(&info, &analysis), &opts));

    // The library view: statement 1's flow to the final read is dead.
    let dead: Vec<_> = analysis.dead_flows().collect();
    assert!(
        dead.iter().any(|d| d.src.label == 1 && d.dst.label == 3),
        "the a(i) := 0 value never reaches c(i)"
    );
    Ok(())
}
