//! A tour of the paper's Examples 1–6: killing, covering and refinement
//! on the six loop nests of the Examples box, printing unrefined vs
//! refined vectors exactly as the paper tabulates them.
//!
//! Run with `cargo run --example refinement_tour`.

use depend::{analyze_program, Config};

fn show(name: &str, source: &str) -> Result<(), Box<dyn std::error::Error>> {
    let program = tiny::Program::parse(source)?;
    let info = tiny::analyze(&program)?;

    let std = analyze_program(&info, &Config::standard())?;
    let ext = analyze_program(&info, &Config::extended())?;

    println!("== {name} ==");
    for (u, r) in std.flows.iter().zip(&ext.flows) {
        let unrefined = u.summary().to_string();
        let status = if r.is_live() {
            format!("refined: {} {}", r.summary(), r.status_tag())
        } else {
            format!("DEAD {}", r.status_tag())
        };
        println!(
            "  flow {} -> {}: unrefined {unrefined:<9} {status}",
            u.src.label, u.dst.label
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    use tiny::corpus as c;
    show("Example 1: killed flow dependence", c::EXAMPLE_1)?;
    show("Example 1 (a(m) variant): kill unverifiable", c::EXAMPLE_1_M)?;
    show(
        "Example 1 (asserted n <= m <= n+10): kill restored",
        c::EXAMPLE_1_M_ASSERTED,
    )?;
    show("Example 2: covering and killed dependences", c::EXAMPLE_2)?;
    show("Example 3: refinement (0+,1) -> (0,1)", c::EXAMPLE_3)?;
    show("Example 4: trapezoidal refinement", c::EXAMPLE_4)?;
    show("Example 5: partial refinement (0:1,1)", c::EXAMPLE_5)?;
    show("Example 6: coupled refinement (1,1)", c::EXAMPLE_6)?;
    Ok(())
}
