//! Reproduces Figures 3 and 4 of the paper: live and dead flow
//! dependences for the CHOLSKY NAS kernel, printed with the original
//! Fortran DO-label numbering.
//!
//! Run with `cargo run --release --example cholsky`.

use depend::{analyze_program, Config, ReportOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY)?;
    let info = tiny::analyze(&program)?;
    let analysis = analyze_program(&info, &Config::extended())?;
    let opts = ReportOptions {
        label_map: Some(tiny::corpus::CHOLSKY_PAPER_LABELS.to_vec()),
    };

    let graph = depend::DepGraph::new(&info, &analysis);
    println!("=== Figure 3: live flow dependences for CHOLSKY ===");
    print!("{}", depend::live_flow_table(&graph, &opts));
    println!();
    println!("=== Figure 4: dead flow dependences for CHOLSKY ===");
    print!("{}", depend::dead_flow_table(&graph, &opts));
    println!();
    println!(
        "summary: {} live flows, {} dead flows, {} output deps, {} anti deps",
        analysis.live_flows().count(),
        analysis.dead_flows().count(),
        analysis.outputs.len(),
        analysis.antis.len(),
    );
    Ok(())
}
