//! A tour of the Omega test itself, following §3 of the paper: projection
//! and its shadows, satisfiability, gists, implication checking, and the
//! Presburger formula shapes dependence analysis asks.
//!
//! Run with `cargo run --example omega_playground`.

use omega::{gist, implies, Budget, Formula, LinExpr, Problem, VarKind};

fn main() -> Result<(), omega::Error> {
    // --- Projection (§3): the shadow of a set of constraints ----------
    // The paper's example: projecting {0 <= a <= 5, b < a <= 5b} onto a
    // gives {2 <= a <= 5}.
    let mut p = Problem::new();
    let a = p.add_var("a", VarKind::Input);
    let b = p.add_var("b", VarKind::Input);
    p.add_geq(LinExpr::var(a)); // a >= 0
    p.add_geq(LinExpr::term(-1, a).plus_const(5)); // a <= 5
    p.add_geq(LinExpr::var(a).plus_term(-1, b).plus_const(-1)); // b < a
    p.add_geq(LinExpr::term(5, b).plus_term(-1, a)); // a <= 5b
    let proj = p.project(&[a])?;
    println!("π_a {{0 <= a <= 5, b < a <= 5b}}:");
    println!("  dark shadow (exact here): {}", proj.dark());
    println!("  real shadow:              {}", proj.real());
    println!("  exact: {}", proj.is_exact());

    // --- Satisfiability with integer gaps ------------------------------
    let mut gap = Problem::new();
    let x = gap.add_var("x", VarKind::Input);
    gap.add_geq(LinExpr::term(3, x).plus_const(-4)); // 3x >= 4
    gap.add_geq(LinExpr::term(-3, x).plus_const(5)); // 3x <= 5
    println!();
    println!(
        "4 <= 3x <= 5 is {} over the integers (real-satisfiable!)",
        if gap.is_satisfiable()? { "SAT" } else { "UNSAT" }
    );

    // --- Witness extraction --------------------------------------------
    let mut dio = Problem::new();
    let u = dio.add_var("u", VarKind::Input);
    let v = dio.add_var("v", VarKind::Input);
    dio.add_eq(LinExpr::term(7, u).plus_term(12, v).plus_const(-31));
    let sol = dio.sample_solution()?.expect("7u + 12v = 31 is solvable");
    println!();
    println!("witness for 7u + 12v = 31: u = {}, v = {}", sol[&u], sol[&v]);

    // --- Gist (§3.3): "the new information in p, given q" --------------
    let mut space = Problem::new();
    let k1 = space.add_var("k1", VarKind::Input);
    let n = space.add_var("n", VarKind::Symbolic);
    let m = space.add_var("m", VarKind::Symbolic);
    // p: k1 = m ∧ n <= k1 <= n+20 — when does the Example 1 variant's
    // first write reach the read?
    let mut p1 = space.clone();
    p1.add_eq(LinExpr::var(k1).plus_term(-1, m));
    p1.add_geq(LinExpr::var(k1).plus_term(-1, n));
    p1.add_geq(LinExpr::var(n).plus_term(-1, k1).plus_const(20));
    // q: the killer writes n <= k1 <= n+10.
    let mut q1 = space.clone();
    q1.add_geq(LinExpr::var(k1).plus_term(-1, n));
    q1.add_geq(LinExpr::var(n).plus_term(-1, k1).plus_const(10));
    println!();
    println!("does {p1}  imply  {q1}?  {}", implies(&p1, &q1)?);
    println!("gist of the target given the premise: {}", gist(&q1, &p1)?);
    // Adding the user assertion n <= m <= n+10 restores the kill.
    p1.add_geq(LinExpr::var(m).plus_term(-1, n));
    p1.add_geq(LinExpr::var(n).plus_term(-1, m).plus_const(10));
    println!(
        "with `assume n <= m <= n+10`: implication is {}",
        implies(&p1, &q1)?
    );

    // --- Presburger shapes (§3.2) ---------------------------------------
    // ∀x. (∃y. x = 2y) ⇒ (∃z. x = 2z - 4): shifting an even number by 4.
    let mut fs = Problem::new();
    let fx = fs.add_var("x", VarKind::Input);
    let fy = fs.add_var("y", VarKind::Input);
    let fz = fs.add_var("z", VarKind::Input);
    let even = Formula::exists(vec![fy], Formula::eq0(LinExpr::var(fx).plus_term(-2, fy)));
    let shifted = Formula::exists(
        vec![fz],
        Formula::eq0(LinExpr::var(fx).plus_term(-2, fz).plus_const(4)),
    );
    let mut budget = Budget::default();
    println!();
    println!(
        "forall x: even(x) => even(x+4)?  {}",
        even.clone().implies(shifted).is_valid(&fs, &mut budget)?
    );
    let odd_target = Formula::exists(
        vec![fz],
        Formula::eq0(LinExpr::var(fx).plus_term(-2, fz).plus_const(3)),
    );
    println!(
        "forall x: even(x) => odd(x+3)... wait, x+3 odd means x even: {}",
        even.implies(odd_target).is_valid(&fs, &mut budget)?
    );
    Ok(())
}
