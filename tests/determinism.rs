//! Determinism of the parallel analysis driver: the report, the JSON
//! dump, and the per-pair statistics must be byte-identical at every
//! `Config::threads` setting and with the memo cache on or off — and
//! must match the goldens captured from the sequential, cache-less
//! driver (`tests/golden/`).

use std::process::Command;

use depend::{analyze_program, Config, ReportOptions};

fn cholsky() -> tiny::ProgramInfo {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    tiny::analyze(&program).unwrap()
}

fn render(info: &tiny::ProgramInfo, config: &Config) -> (String, String, String) {
    let analysis = analyze_program(info, config).unwrap();
    let ropts = ReportOptions::default();
    (
        depend::live_flow_table(info, &analysis, &ropts),
        depend::dead_flow_table(info, &analysis, &ropts),
        depend::report::to_json(info, &analysis),
    )
}

#[test]
fn cholsky_reports_are_identical_at_every_thread_count() {
    let info = cholsky();
    let base = render(&info, &Config::extended());
    for threads in [2, 8, 0] {
        let config = Config {
            threads,
            ..Config::extended()
        };
        assert_eq!(
            render(&info, &config),
            base,
            "threads={threads} diverged from the sequential report"
        );
    }
}

#[test]
fn cholsky_pair_stats_are_identical_at_every_thread_count() {
    let info = cholsky();
    let base = analyze_program(&info, &Config::extended()).unwrap();
    for threads in [2, 8] {
        let config = Config {
            threads,
            ..Config::extended()
        };
        let par = analyze_program(&info, &config).unwrap();
        // Timings differ run to run; everything else must not — including
        // the *order* of the per-pair and per-kill records.
        let strip_pairs = |a: &depend::Analysis| {
            a.stats
                .pairs
                .iter()
                .map(|p| (p.src, p.dst, p.class, p.dep_found))
                .collect::<Vec<_>>()
        };
        let strip_kills = |a: &depend::Analysis| {
            a.stats
                .kills
                .iter()
                .map(|k| (k.victim_src, k.killer, k.read, k.consulted_omega, k.killed))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip_pairs(&par), strip_pairs(&base), "threads={threads}");
        assert_eq!(strip_kills(&par), strip_kills(&base), "threads={threads}");
        assert_eq!(
            par.stats.prefilter, base.stats.prefilter,
            "threads={threads}"
        );
    }
}

#[test]
fn cholsky_report_is_identical_without_the_memo_cache() {
    let info = cholsky();
    let cached = render(&info, &Config::extended());
    let cold = render(
        &info,
        &Config {
            memo_cache: false,
            ..Config::extended()
        },
    );
    assert_eq!(cached, cold);
}

#[test]
fn tinydep_gauss_jordan_matches_the_golden_at_every_thread_count() {
    // A second golden besides CHOLSKY: GAUSS_JORDAN concentrates its
    // kill tests in a single read, exercising the opposite stage-3
    // load shape (one heavy task instead of many light ones).
    let golden_all = include_str!("golden/gauss_jordan_all.txt");
    for extra in [None, Some("--threads=2"), Some("--threads=8")] {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_tinydep"));
        cmd.arg("--all");
        if let Some(flag) = extra {
            cmd.arg(flag);
        }
        let out = cmd
            .arg("corpus:gauss_jordan")
            .output()
            .expect("tinydep runs");
        assert!(out.status.success());
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            golden_all,
            "--all {extra:?}"
        );
    }
}

#[test]
fn tinydep_cholsky_matches_the_goldens_at_every_thread_count() {
    let golden_all = include_str!("golden/cholsky_all.txt");
    let golden_json = include_str!("golden/cholsky.json");
    for extra in [None, Some("--threads=2"), Some("--threads=8")] {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_tinydep"));
        cmd.arg("--all");
        if let Some(flag) = extra {
            cmd.arg(flag);
        }
        let out = cmd.arg("corpus:cholsky").output().expect("tinydep runs");
        assert!(out.status.success());
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            golden_all,
            "--all {extra:?}"
        );

        let mut cmd = Command::new(env!("CARGO_BIN_EXE_tinydep"));
        cmd.arg("--json");
        if let Some(flag) = extra {
            cmd.arg(flag);
        }
        let out = cmd.arg("corpus:cholsky").output().expect("tinydep runs");
        assert!(out.status.success());
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            golden_json,
            "--json {extra:?}"
        );
    }
}
