//! Determinism of the parallel analysis driver: the report, the JSON
//! dump, and the per-pair statistics must be byte-identical at every
//! `Config::threads` setting and with the memo cache on or off — and
//! must match the goldens captured from the sequential, cache-less
//! driver (`tests/golden/`). The corpus driver (`analyze_corpus`, the
//! two-level pool) is held to the same bar: every program's report must
//! match the standalone single-program driver at every thread count,
//! with the cache cold, warm from a file, or disabled.

use std::process::Command;

use depend::{analyze_corpus, analyze_program, Config, ReportOptions};

fn cholsky() -> tiny::ProgramInfo {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    tiny::analyze(&program).unwrap()
}

fn render(info: &tiny::ProgramInfo, config: &Config) -> (String, String, String) {
    let analysis = analyze_program(info, config).unwrap();
    let ropts = ReportOptions::default();
    let graph = depend::DepGraph::new(info, &analysis);
    (
        depend::live_flow_table(&graph, &ropts),
        depend::dead_flow_table(&graph, &ropts),
        depend::report::to_json(&graph),
    )
}

#[test]
fn cholsky_reports_are_identical_at_every_thread_count() {
    let info = cholsky();
    let base = render(&info, &Config::extended());
    for threads in [2, 8, 0] {
        let config = Config {
            threads,
            ..Config::extended()
        };
        assert_eq!(
            render(&info, &config),
            base,
            "threads={threads} diverged from the sequential report"
        );
    }
}

#[test]
fn cholsky_pair_stats_are_identical_at_every_thread_count() {
    let info = cholsky();
    let base = analyze_program(&info, &Config::extended()).unwrap();
    for threads in [2, 8] {
        let config = Config {
            threads,
            ..Config::extended()
        };
        let par = analyze_program(&info, &config).unwrap();
        // Timings differ run to run; everything else must not — including
        // the *order* of the per-pair and per-kill records.
        let strip_pairs = |a: &depend::Analysis| {
            a.stats
                .pairs
                .iter()
                .map(|p| (p.src, p.dst, p.class, p.dep_found))
                .collect::<Vec<_>>()
        };
        let strip_kills = |a: &depend::Analysis| {
            a.stats
                .kills
                .iter()
                .map(|k| (k.victim_src, k.killer, k.read, k.consulted_omega, k.killed))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip_pairs(&par), strip_pairs(&base), "threads={threads}");
        assert_eq!(strip_kills(&par), strip_kills(&base), "threads={threads}");
        assert_eq!(
            par.stats.prefilter, base.stats.prefilter,
            "threads={threads}"
        );
    }
}

#[test]
fn cholsky_report_is_identical_without_the_memo_cache() {
    let info = cholsky();
    let cached = render(&info, &Config::extended());
    let cold = render(
        &info,
        &Config {
            memo_cache: false,
            ..Config::extended()
        },
    );
    assert_eq!(cached, cold);
}

/// Every built-in corpus program, through the `tiny` front end.
fn corpus_infos() -> Vec<tiny::ProgramInfo> {
    tiny::corpus::all()
        .iter()
        .map(|e| {
            let program = tiny::Program::parse(e.source)
                .unwrap_or_else(|err| panic!("{}: {err}", e.name));
            tiny::analyze(&program).unwrap_or_else(|err| panic!("{}: {err}", e.name))
        })
        .collect()
}

/// Renders every corpus analysis to its report/JSON triple.
fn render_corpus(
    infos: &[tiny::ProgramInfo],
    analyses: &[depend::Analysis],
) -> Vec<(String, String, String)> {
    let ropts = ReportOptions::default();
    infos
        .iter()
        .zip(analyses)
        .map(|(info, a)| {
            let graph = depend::DepGraph::new(info, a);
            (
                depend::live_flow_table(&graph, &ropts),
                depend::dead_flow_table(&graph, &ropts),
                depend::report::to_json(&graph),
            )
        })
        .collect()
}

#[test]
fn corpus_driver_matches_the_standalone_driver_at_every_thread_count() {
    // Baseline: each program through the standalone single-program
    // driver, sequential, its own private cache.
    let infos = corpus_infos();
    let base: Vec<_> = {
        let analyses: Vec<_> = infos
            .iter()
            .map(|info| analyze_program(info, &Config::extended()).unwrap())
            .collect();
        render_corpus(&infos, &analyses)
    };
    // The two-level corpus driver must reproduce it byte-for-byte at
    // every thread count — programs share one pool and one cache, and
    // completion order varies, but no report may change.
    for threads in [1, 2, 8, 16] {
        let config = Config {
            threads,
            ..Config::extended()
        };
        let analyses = analyze_corpus(&infos, &config).unwrap();
        assert_eq!(
            render_corpus(&infos, &analyses),
            base,
            "corpus threads={threads} diverged from the standalone driver"
        );
    }
    // And with the memo cache disabled entirely.
    let config = Config {
        threads: 8,
        memo_cache: false,
        ..Config::extended()
    };
    let analyses = analyze_corpus(&infos, &config).unwrap();
    assert_eq!(
        render_corpus(&infos, &analyses),
        base,
        "cache-less corpus run diverged"
    );
}

#[test]
fn corpus_driver_is_identical_with_a_cold_and_warm_persistent_cache() {
    let infos = corpus_infos();
    let base: Vec<_> = {
        let analyses = analyze_corpus(&infos, &Config::extended()).unwrap();
        render_corpus(&infos, &analyses)
    };
    let path = std::env::temp_dir().join(format!(
        "omega_corpus_cache_{}.cache",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    // Cold run populates the file; warm runs are served from it. Every
    // run, at every thread count, must match the no-file baseline.
    for (label, threads) in [("cold", 8), ("warm", 1), ("warm", 8), ("warm", 16)] {
        let config = Config {
            threads,
            cache_file: Some(path.clone()),
            ..Config::extended()
        };
        let analyses = analyze_corpus(&infos, &config).unwrap();
        assert!(
            !analyses.iter().any(|a| a.stats.cache_save_failed),
            "{label} threads={threads}: cache save failed"
        );
        assert_eq!(
            render_corpus(&infos, &analyses),
            base,
            "{label} persistent-cache corpus run (threads={threads}) diverged"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn tinydep_corpus_mode_is_identical_at_every_thread_count() {
    // The CLI corpus mode: one process, every built-in program, reports
    // concatenated as `== NAME ==` sections. Byte-identical across
    // thread counts, and each section matches the single-input run.
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_tinydep"))
            .args(["--corpus", threads])
            .output()
            .expect("tinydep --corpus runs");
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    let base = run("--threads=1");
    assert!(base.starts_with("== "), "missing section headers:\n{base}");
    for threads in ["--threads=2", "--threads=8", "--threads=16"] {
        assert_eq!(run(threads), base, "{threads} corpus output diverged");
    }
    // Spot-check one section against the dedicated single-input run.
    let single = Command::new(env!("CARGO_BIN_EXE_tinydep"))
        .arg("corpus:cholsky")
        .output()
        .expect("tinydep runs");
    let single = String::from_utf8(single.stdout).unwrap();
    let section = base
        .split("== cholsky ==\n")
        .nth(1)
        .expect("cholsky section present")
        .split("== ")
        .next()
        .unwrap();
    assert_eq!(section, single, "corpus section diverged from the single run");
}

#[test]
fn tinydep_gauss_jordan_matches_the_golden_at_every_thread_count() {
    // A second golden besides CHOLSKY: GAUSS_JORDAN concentrates its
    // kill tests in a single read, exercising the opposite stage-3
    // load shape (one heavy task instead of many light ones).
    let golden_all = include_str!("golden/gauss_jordan_all.txt");
    for extra in [None, Some("--threads=2"), Some("--threads=8")] {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_tinydep"));
        cmd.arg("--all");
        if let Some(flag) = extra {
            cmd.arg(flag);
        }
        let out = cmd
            .arg("corpus:gauss_jordan")
            .output()
            .expect("tinydep runs");
        assert!(out.status.success());
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            golden_all,
            "--all {extra:?}"
        );
    }
}

#[test]
fn tinydep_cholsky_matches_the_goldens_at_every_thread_count() {
    let golden_all = include_str!("golden/cholsky_all.txt");
    let golden_json = include_str!("golden/cholsky.json");
    for extra in [None, Some("--threads=2"), Some("--threads=8")] {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_tinydep"));
        cmd.arg("--all");
        if let Some(flag) = extra {
            cmd.arg(flag);
        }
        let out = cmd.arg("corpus:cholsky").output().expect("tinydep runs");
        assert!(out.status.success());
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            golden_all,
            "--all {extra:?}"
        );

        let mut cmd = Command::new(env!("CARGO_BIN_EXE_tinydep"));
        cmd.arg("--json");
        if let Some(flag) = extra {
            cmd.arg(flag);
        }
        let out = cmd.arg("corpus:cholsky").output().expect("tinydep runs");
        assert!(out.status.success());
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            golden_json,
            "--json {extra:?}"
        );
    }
}
