//! Integration tests for the paper's Examples 1–6: kills, covers and
//! refinements, exercised through the public whole-program API.

use depend::{analyze_program, Analysis, Config, DeadReason};

fn run(source: &str) -> Analysis {
    let program = tiny::Program::parse(source).unwrap();
    let info = tiny::analyze(&program).unwrap();
    analyze_program(&info, &Config::extended()).unwrap()
}

fn flow(a: &Analysis, src: usize, dst: usize) -> &depend::Dependence {
    a.flows
        .iter()
        .find(|d| d.src.label == src && d.dst.label == dst)
        .unwrap_or_else(|| panic!("no flow {src} -> {dst}"))
}

#[test]
fn example1_kill() {
    let a = run(tiny::corpus::EXAMPLE_1);
    assert_eq!(flow(&a, 1, 3).dead, Some(DeadReason::Killed));
    assert!(flow(&a, 2, 3).is_live());
}

#[test]
fn example1_variants_assertion_dialog() {
    // Without the assertion the kill cannot be verified...
    let a = run(tiny::corpus::EXAMPLE_1_M);
    assert!(flow(&a, 1, 3).is_live());
    // ...with `assume n <= m <= n+10` it is restored.
    let b = run(tiny::corpus::EXAMPLE_1_M_ASSERTED);
    assert_eq!(flow(&b, 1, 3).dead, Some(DeadReason::Killed));
}

#[test]
fn example2_cover_and_kills() {
    let a = run(tiny::corpus::EXAMPLE_2);
    let cover = flow(&a, 4, 5);
    assert!(cover.is_live());
    assert!(cover.covering, "a(L2-1) covers the read");
    assert!(cover.refined, "refined from (0+) to (0)");
    assert_eq!(cover.summary().to_string(), "(0)");
    // a(m) and a(L1) precede the loop-independent cover: covered.
    assert_eq!(flow(&a, 1, 5).dead, Some(DeadReason::Covered));
    assert_eq!(flow(&a, 2, 5).dead, Some(DeadReason::Covered));
    // a(L2) may execute after cover instances: requires a general kill.
    assert_eq!(flow(&a, 3, 5).dead, Some(DeadReason::Killed));
}

#[test]
fn example3_refinement() {
    let a = run(tiny::corpus::EXAMPLE_3);
    let d = flow(&a, 1, 1);
    assert!(d.refined);
    assert_eq!(d.summary().to_string(), "(0,1)");
}

#[test]
fn example4_trapezoidal_refinement() {
    let a = run(tiny::corpus::EXAMPLE_4);
    assert_eq!(flow(&a, 1, 1).summary().to_string(), "(0,1)");
}

#[test]
fn example5_partial_refinement() {
    let a = run(tiny::corpus::EXAMPLE_5);
    // The paper: refined flow dependence (0:1,1), found only through the
    // widening extension (its generator alone stops at (0+,1)).
    assert_eq!(flow(&a, 1, 1).summary().to_string(), "(0:1,1)");

    // Ablation: without widening, the refinement fails as in the paper's
    // description of its own generator.
    let program = tiny::Program::parse(tiny::corpus::EXAMPLE_5).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let cfg = Config {
        widen_refinement: false,
        ..Config::extended()
    };
    let b = analyze_program(&info, &cfg).unwrap();
    assert_eq!(flow(&b, 1, 1).summary().to_string(), "(0+,1)");
}

#[test]
fn example6_coupled_refinement() {
    let a = run(tiny::corpus::EXAMPLE_6);
    let d = flow(&a, 1, 1);
    assert!(d.refined);
    assert_eq!(d.summary().to_string(), "(1,1)");
}

#[test]
fn kill_chain_and_partial_kill() {
    let a = run(tiny::corpus::CONTRIVED_KILL_CHAIN);
    assert!(!flow(&a, 1, 3).is_live(), "fully overwritten");
    assert!(flow(&a, 2, 3).is_live());

    let b = run(tiny::corpus::CONTRIVED_PARTIAL_KILL);
    assert!(
        flow(&b, 1, 3).is_live(),
        "only even elements overwritten: flow survives"
    );
}

#[test]
fn refinement_respects_disabled_config() {
    let program = tiny::Program::parse(tiny::corpus::EXAMPLE_6).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let a = analyze_program(&info, &Config::standard()).unwrap();
    let d = flow(&a, 1, 1);
    assert!(!d.refined);
    assert_eq!(d.summary().to_string(), "(+,+)");
}
