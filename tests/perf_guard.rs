//! Coarse performance regression guard: the whole-CHOLSKY extended
//! analysis must stay within an order of magnitude of its measured cost
//! (the paper's "suitable for production compilers" claim). Runs in
//! release CI only — debug builds get a generous multiplier.

use std::time::Instant;

use depend::{analyze_program, Config};

#[global_allocator]
static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc::new();

/// Warm-run allocation count measured right after the dense
/// scratch-tableau kernel landed (release profile, threads=1 extended
/// analysis). History: pre-interning core 638,413; interned core
/// (hash-consed rows + COW problems) 187,123; dense tableau 102,742.
const CHOLSKY_WARM_ALLOC_BUDGET: u64 = 102_742;

/// Wall-clock ceiling for the warm single-threaded extended CHOLSKY
/// analysis, release profile (the issue target for the dense kernel;
/// measured ~27.7 ms). Taken as the minimum of three runs to damp
/// scheduler noise; debug builds get a generous multiplier.
const CHOLSKY_WARM_MS_BUDGET: u128 = 30;

/// Allocation ceiling for one *warm* satisfiability query (pool hit: the
/// tableau and its workspace buffers are reused from the previous
/// query). Measured: 0 — the borrow-based dense entry solves straight
/// from the problem's constraint lists, so neither the API layer nor the
/// kernel allocates.
const WARM_SAT_ALLOC_BUDGET: u64 = 0;

/// Allocation ceiling for a *cold* single-threaded extended CHOLSKY
/// analysis (fresh solver cache, fresh memo, first run of the config).
/// Measured 100,950 after the checkpoint PR; the pre-checkpoint seed
/// measured 102,744, so the gate sits between the two: it fails if the
/// cold path regresses back to (or past) the seed.
const CHOLSKY_COLD_ALLOC_BUDGET: u64 = 102_000;

/// Wall-clock ceiling for a cold single-threaded extended CHOLSKY
/// analysis, release profile (measured ~30 ms; minimum of three fresh
///-cache runs to damp scheduler noise).
const CHOLSKY_COLD_MS_BUDGET: u128 = 45;

#[test]
fn cholsky_extended_analysis_is_fast() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    // Warm up once (allocator, page faults).
    let _ = analyze_program(&info, &Config::extended()).unwrap();
    let t = Instant::now();
    let a = analyze_program(&info, &Config::extended()).unwrap();
    let elapsed = t.elapsed();
    assert_eq!(a.dead_flows().count(), 14);
    let limit_ms = if cfg!(debug_assertions) { 30_000 } else { 3_000 };
    assert!(
        elapsed.as_millis() < limit_ms,
        "extended CHOLSKY analysis took {elapsed:?} (limit {limit_ms} ms): \
         investigate a solver regression"
    );
}

#[test]
fn cholsky_warm_analysis_stays_within_allocation_budget() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let config = Config {
        threads: 1,
        ..Config::extended()
    };
    // Warm the global row store and symbol table, then measure a full
    // analysis on this thread only (threads: 1 keeps all solver work
    // here, so concurrent tests in the runner don't pollute the count).
    let _ = analyze_program(&info, &config).unwrap();
    let before = harness::alloc::thread_allocs();
    let a = analyze_program(&info, &config).unwrap();
    let allocs = harness::alloc::thread_allocs() - before;
    assert_eq!(a.dead_flows().count(), 14);
    let limit = CHOLSKY_WARM_ALLOC_BUDGET + CHOLSKY_WARM_ALLOC_BUDGET / 10;
    assert!(
        allocs <= limit,
        "warm CHOLSKY analysis allocated {allocs} times, over the regression \
         limit {limit} (budget {CHOLSKY_WARM_ALLOC_BUDGET} + 10%): \
         something reintroduced per-constraint copying"
    );
}

#[test]
fn cholsky_warm_analysis_stays_within_wall_budget() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let config = Config {
        threads: 1,
        ..Config::extended()
    };
    let _ = analyze_program(&info, &config).unwrap();
    // Minimum of three warm runs: wall gates measure the machine as much
    // as the code, and the minimum is the run least disturbed by it.
    let mut best = u128::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let a = analyze_program(&info, &config).unwrap();
        best = best.min(t.elapsed().as_millis());
        assert_eq!(a.dead_flows().count(), 14);
    }
    let limit_ms = if cfg!(debug_assertions) {
        CHOLSKY_WARM_MS_BUDGET * 100
    } else {
        CHOLSKY_WARM_MS_BUDGET
    };
    assert!(
        best <= limit_ms,
        "warm extended CHOLSKY analysis took {best} ms (limit {limit_ms} ms): \
         the dense-kernel speedup regressed"
    );
}

#[test]
fn cholsky_cold_analysis_stays_within_allocation_budget() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    // Warm process-global state (row store, symbol table) with a throwaway
    // config, then measure a run against a *fresh* solver cache: every
    // delta query below is a memo miss, so this exercises the checkpoint
    // record/rebuild policy rather than memo hits.
    let _ = analyze_program(
        &info,
        &Config {
            threads: 1,
            ..Config::extended()
        },
    )
    .unwrap();
    let config = Config {
        threads: 1,
        ..Config::extended()
    };
    let before = harness::alloc::thread_allocs();
    let a = analyze_program(&info, &config).unwrap();
    let allocs = harness::alloc::thread_allocs() - before;
    assert_eq!(a.dead_flows().count(), 14);
    assert!(
        allocs <= CHOLSKY_COLD_ALLOC_BUDGET,
        "cold CHOLSKY analysis allocated {allocs} times, over the limit \
         {CHOLSKY_COLD_ALLOC_BUDGET} (pre-checkpoint seed: 102,744): \
         the miss path got more expensive"
    );
}

#[test]
fn cholsky_cold_analysis_stays_within_wall_budget() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let _ = analyze_program(
        &info,
        &Config {
            threads: 1,
            ..Config::extended()
        },
    )
    .unwrap();
    // Each iteration builds a fresh Config (fresh solver cache), so every
    // run is cold; the minimum damps machine noise as in the warm gate.
    let mut best = u128::MAX;
    for _ in 0..3 {
        let config = Config {
            threads: 1,
            ..Config::extended()
        };
        let t = Instant::now();
        let a = analyze_program(&info, &config).unwrap();
        best = best.min(t.elapsed().as_millis());
        assert_eq!(a.dead_flows().count(), 14);
    }
    let limit_ms = if cfg!(debug_assertions) {
        CHOLSKY_COLD_MS_BUDGET * 100
    } else {
        CHOLSKY_COLD_MS_BUDGET
    };
    assert!(
        best <= limit_ms,
        "cold extended CHOLSKY analysis took {best} ms (limit {limit_ms} ms): \
         the miss path slowed down"
    );
}

#[test]
fn warm_sat_query_allocates_almost_nothing() {
    use omega::{Budget, LinExpr, Problem, VarKind};
    // A representative dependence-shaped query: triangular bounds plus a
    // coupling equality, so the solve exercises normalization, equality
    // substitution, and Fourier-Motzkin.
    let mut p = Problem::new();
    let i = p.add_var("i", VarKind::Input);
    let j = p.add_var("j", VarKind::Input);
    let n = p.add_var("n", VarKind::Symbolic);
    p.add_geq(LinExpr::var(i).plus_const(-1));
    p.add_geq(LinExpr::var(n).plus_term(-1, i));
    p.add_geq(LinExpr::var(j).plus_term(-1, i));
    p.add_geq(LinExpr::var(n).plus_term(-1, j));
    p.add_eq(LinExpr::term(2, i).plus_term(-1, j).plus_const(-1));
    // Warm the thread-local tableau pool, then measure one query.
    assert!(p.is_satisfiable_with(&mut Budget::default()).unwrap());
    let before = harness::alloc::thread_allocs();
    assert!(p.is_satisfiable_with(&mut Budget::default()).unwrap());
    let allocs = harness::alloc::thread_allocs() - before;
    assert!(
        allocs <= WARM_SAT_ALLOC_BUDGET,
        "a warm sat query allocated {allocs} times \
         (budget {WARM_SAT_ALLOC_BUDGET}): the tableau pool stopped reusing \
         its buffers"
    );
}

#[test]
fn single_pair_analysis_is_microseconds_scale() {
    use depend::{build_dependence, AccessSite, DepKind};
    let program = tiny::Program::parse(tiny::corpus::WAVEFRONT).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let s = &info.stmts[0];
    let mut budget = omega::Budget::default();
    let t = Instant::now();
    for _ in 0..100 {
        let d = build_dependence(
            &info,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut budget,
        )
        .unwrap();
        assert!(d.is_some());
    }
    let per_pair = t.elapsed() / 100;
    let limit_us = if cfg!(debug_assertions) { 20_000 } else { 2_000 };
    assert!(
        per_pair.as_micros() < limit_us,
        "per-pair analysis {per_pair:?} exceeds {limit_us} us"
    );
}
