//! Coarse performance regression guard: the whole-CHOLSKY extended
//! analysis must stay within an order of magnitude of its measured cost
//! (the paper's "suitable for production compilers" claim). Runs in
//! release CI only — debug builds get a generous multiplier.

use std::time::Instant;

use depend::{analyze_program, Config};

#[global_allocator]
static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc::new();

/// Warm-run allocation count measured right after the interned-core
/// refactor (hash-consed rows + COW problems), release profile. The
/// pre-interning core allocated 638,413 times on the same workload.
const CHOLSKY_WARM_ALLOC_BUDGET: u64 = 187_123;

#[test]
fn cholsky_extended_analysis_is_fast() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    // Warm up once (allocator, page faults).
    let _ = analyze_program(&info, &Config::extended()).unwrap();
    let t = Instant::now();
    let a = analyze_program(&info, &Config::extended()).unwrap();
    let elapsed = t.elapsed();
    assert_eq!(a.dead_flows().count(), 14);
    let limit_ms = if cfg!(debug_assertions) { 30_000 } else { 3_000 };
    assert!(
        elapsed.as_millis() < limit_ms,
        "extended CHOLSKY analysis took {elapsed:?} (limit {limit_ms} ms): \
         investigate a solver regression"
    );
}

#[test]
fn cholsky_warm_analysis_stays_within_allocation_budget() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let config = Config {
        threads: 1,
        ..Config::extended()
    };
    // Warm the global row store and symbol table, then measure a full
    // analysis on this thread only (threads: 1 keeps all solver work
    // here, so concurrent tests in the runner don't pollute the count).
    let _ = analyze_program(&info, &config).unwrap();
    let before = harness::alloc::thread_allocs();
    let a = analyze_program(&info, &config).unwrap();
    let allocs = harness::alloc::thread_allocs() - before;
    assert_eq!(a.dead_flows().count(), 14);
    let limit = CHOLSKY_WARM_ALLOC_BUDGET + CHOLSKY_WARM_ALLOC_BUDGET / 10;
    assert!(
        allocs <= limit,
        "warm CHOLSKY analysis allocated {allocs} times, over the regression \
         limit {limit} (budget {CHOLSKY_WARM_ALLOC_BUDGET} + 10%): \
         something reintroduced per-constraint copying"
    );
}

#[test]
fn single_pair_analysis_is_microseconds_scale() {
    use depend::{build_dependence, AccessSite, DepKind};
    let program = tiny::Program::parse(tiny::corpus::WAVEFRONT).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let s = &info.stmts[0];
    let mut budget = omega::Budget::default();
    let t = Instant::now();
    for _ in 0..100 {
        let d = build_dependence(
            &info,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut budget,
        )
        .unwrap();
        assert!(d.is_some());
    }
    let per_pair = t.elapsed() / 100;
    let limit_us = if cfg!(debug_assertions) { 20_000 } else { 2_000 };
    assert!(
        per_pair.as_micros() < limit_us,
        "per-pair analysis {per_pair:?} exceeds {limit_us} us"
    );
}
