//! Coarse performance regression guard: the whole-CHOLSKY extended
//! analysis must stay within an order of magnitude of its measured cost
//! (the paper's "suitable for production compilers" claim). Runs in
//! release CI only — debug builds get a generous multiplier.

use std::time::Instant;

use depend::{analyze_program, Config};

#[test]
fn cholsky_extended_analysis_is_fast() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    // Warm up once (allocator, page faults).
    let _ = analyze_program(&info, &Config::extended()).unwrap();
    let t = Instant::now();
    let a = analyze_program(&info, &Config::extended()).unwrap();
    let elapsed = t.elapsed();
    assert_eq!(a.dead_flows().count(), 14);
    let limit_ms = if cfg!(debug_assertions) { 30_000 } else { 3_000 };
    assert!(
        elapsed.as_millis() < limit_ms,
        "extended CHOLSKY analysis took {elapsed:?} (limit {limit_ms} ms): \
         investigate a solver regression"
    );
}

#[test]
fn single_pair_analysis_is_microseconds_scale() {
    use depend::{build_dependence, AccessSite, DepKind};
    let program = tiny::Program::parse(tiny::corpus::WAVEFRONT).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let s = &info.stmts[0];
    let mut budget = omega::Budget::default();
    let t = Instant::now();
    for _ in 0..100 {
        let d = build_dependence(
            &info,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut budget,
        )
        .unwrap();
        assert!(d.is_some());
    }
    let per_pair = t.elapsed() / 100;
    let limit_us = if cfg!(debug_assertions) { 20_000 } else { 2_000 };
    assert!(
        per_pair.as_micros() < limit_us,
        "per-pair analysis {per_pair:?} exceeds {limit_us} us"
    );
}
