//! Representation equivalence of the interned solver core.
//!
//! The hash-consed row store makes a `Problem` a handle over shared,
//! interned constraint rows. Nothing observable may depend on *how* a
//! problem was assembled: a constraint built coefficient-by-coefficient
//! in ascending variable order must behave exactly like the same
//! constraint built in descending order, scaled by a positive factor,
//! duplicated, cloned out of another problem (copy-on-write), or added
//! in a different position. This property test builds each random
//! problem through two maximally different construction paths and
//! checks that satisfiability, projection, gist and the canonical
//! digest all agree.

use harness::prop_assert_eq;
use omega::{gist, LinExpr, Problem, ProblemSet, VarId, VarKind};

/// Deterministic xorshift64* PRNG — no external crates, fixed seed, so
/// failures are reproducible by iteration index.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn range(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A small signed coefficient in `[-3, 3]`.
    fn coef(&mut self) -> i64 {
        self.range(7) as i64 - 3
    }
}

/// One randomly generated constraint: dense coefficients plus constant.
#[derive(Clone, Debug)]
struct RawConstraint {
    coeffs: Vec<i64>,
    constant: i64,
    is_eq: bool,
}

fn gen_problem(rng: &mut Rng) -> (usize, Vec<RawConstraint>) {
    let num_vars = 2 + rng.range(3) as usize;
    let num_cons = 2 + rng.range(5) as usize;
    let cons = (0..num_cons)
        .map(|_| RawConstraint {
            coeffs: (0..num_vars).map(|_| rng.coef()).collect(),
            constant: rng.coef(),
            is_eq: rng.range(4) == 0,
        })
        .collect();
    (num_vars, cons)
}

const VAR_NAMES: [&str; 5] = ["i", "j", "k", "l", "m"];

fn add_vars(p: &mut Problem, num_vars: usize) -> Vec<VarId> {
    (0..num_vars)
        .map(|v| p.add_var(VAR_NAMES[v], VarKind::Input))
        .collect()
}

/// Path A: the straightforward dense build — variables then constraints
/// in generation order, coefficients set in ascending variable order.
fn build_dense(num_vars: usize, cons: &[RawConstraint]) -> Problem {
    let mut p = Problem::new();
    let vars = add_vars(&mut p, num_vars);
    for c in cons {
        let mut e = LinExpr::constant_expr(c.constant);
        for (v, &coef) in vars.iter().zip(&c.coeffs) {
            e.set_coef(*v, coef);
        }
        if c.is_eq {
            p.add_eq(e);
        } else {
            p.add_geq(e);
        }
    }
    p
}

/// Path B: the adversarial build. The first half of the constraints is
/// assembled in a *separate* problem that is then cloned (exercising
/// copy-on-write sharing of the variable table and rows); the rest is
/// added in reverse order with coefficients set in descending variable
/// order, every constraint scaled by a positive factor (and equalities
/// by a possibly negative one), with transient coefficients written and
/// zeroed again, and the first constraint appended once more as an
/// exact duplicate.
fn build_adversarial(rng: &mut Rng, num_vars: usize, cons: &[RawConstraint]) -> Problem {
    let half = cons.len() / 2;
    let mut base = Problem::new();
    let vars = add_vars(&mut base, num_vars);
    let raw_expr = |c: &RawConstraint, scale: i64| {
        let mut e = LinExpr::zero();
        // Transient churn: write garbage, then overwrite with the real
        // (scaled) values in descending variable order.
        e.set_coef(vars[num_vars - 1], 99);
        e.set_constant(c.constant * scale);
        for (v, &coef) in vars.iter().zip(&c.coeffs).rev() {
            e.set_coef(*v, coef * scale);
        }
        e
    };
    let add = |p: &mut Problem, c: &RawConstraint, rng: &mut Rng| {
        if c.is_eq {
            // Only negation is canonical-form-preserving for equalities:
            // a scale like 2 is undone by GCD reduction *only when the
            // constant divides exactly* (`4x = 2` reduces to `2x = 1`,
            // but `2x = 1` itself stays unreduced — infeasible yet
            // canonically distinct from `4x = 2`).
            let scale = [1, -1][rng.range(2) as usize];
            p.add_eq(raw_expr(c, scale));
        } else {
            // Positive scales keep an inequality's integer solutions and
            // are undone by GCD reduction — except for coefficient-free
            // constraints (`3 >= 0`), whose constant nothing reduces.
            let scale = if c.coeffs.iter().all(|&k| k == 0) {
                1
            } else {
                [1, 2, 3][rng.range(3) as usize]
            };
            p.add_geq(raw_expr(c, scale));
        }
    };
    for c in &cons[..half] {
        add(&mut base, c, rng);
    }
    // COW: `p` shares the var table and rows with `base` until mutated;
    // mutating `p` below must leave `base` untouched.
    let base_digest = base.canonical_digest();
    let mut p = base.clone();
    for c in cons[half..].iter().rev() {
        add(&mut p, c, rng);
    }
    if let Some(first) = cons.first() {
        add(&mut p, first, rng);
    }
    assert_eq!(
        base.canonical_digest(),
        base_digest,
        "mutating a clone changed the original (copy-on-write violated)"
    );
    p
}

#[test]
fn construction_path_cannot_be_observed() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    let mut exact_set_checks = 0usize;
    for iter in 0..200 {
        let (num_vars, cons) = gen_problem(&mut rng);
        let dense = build_dense(num_vars, &cons);
        let adv = build_adversarial(&mut rng, num_vars, &cons);

        // Canonical digests: the memo cache would key both builds to the
        // same entry.
        assert_eq!(
            dense.canonical_digest(),
            adv.canonical_digest(),
            "iter {iter}: canonical digests diverged"
        );

        // Render equality of the canonical forms: the render boundary
        // (sorted constraint order in `Display`, canonicalization for
        // derived output) must erase the construction path entirely, so
        // a server response embedding a rendered problem is stable no
        // matter how the problem was assembled.
        assert_eq!(
            dense.canonicalized().to_string(),
            adv.canonicalized().to_string(),
            "iter {iter}: canonical renderings diverged"
        );

        // Satisfiability.
        let sat_a = dense.is_satisfiable().unwrap();
        let sat_b = adv.is_satisfiable().unwrap();
        assert_eq!(sat_a, sat_b, "iter {iter}: sat diverged");

        // Projection onto the first two variables. Fourier–Motzkin
        // output is order-sensitive (which is why the memo cache
        // computes cached projections on the canonical form), so raw
        // projections of differently-built problems are compared as
        // *sets*: exact mutual inclusion of the projected regions.
        // Projections *of the canonical forms*, by contrast, must render
        // byte-identically: identical input problems, deterministic
        // algorithm, order-normalized rendering. This is the route a
        // stable render boundary (and the memo cache) takes.
        let keep: Vec<VarId> = dense.var_ids().take(2).collect();
        let render_projection = |p: &Problem| {
            let proj = p.canonicalized().project(&keep).unwrap();
            let splinters: Vec<String> =
                proj.splinters().iter().map(|s| s.to_string()).collect();
            format!("{} | {} | {splinters:?}", proj.dark(), proj.real())
        };
        assert_eq!(
            render_projection(&dense),
            render_projection(&adv),
            "iter {iter}: canonical projection renderings diverged"
        );
        let proj_a = dense.project(&keep).unwrap();
        let proj_b = adv.project(&keep).unwrap();
        assert_eq!(
            proj_a.is_satisfiable().unwrap(),
            proj_b.is_satisfiable().unwrap(),
            "iter {iter}: projection satisfiability diverged"
        );
        let set_a = ProblemSet::from(proj_a);
        let set_b = ProblemSet::from(proj_b);
        let mut budget = omega::Budget::new(1_000_000);
        // Exact set equality negates every piece, which can exceed the
        // formula depth cap for heavily splintered projections; such
        // iterations are skipped (a floor below keeps the skip rate
        // honest).
        match set_a.set_eq(&set_b, &mut budget) {
            Ok(eq) => {
                assert!(eq, "iter {iter}: projected regions diverged");
                exact_set_checks += 1;
            }
            Err(omega::Error::TooComplex { .. }) => {}
            Err(e) => panic!("iter {iter}: set_eq failed: {e}"),
        }

        // Gist of the full system given its own first half (built along
        // the other path, so the two arguments never share a build).
        // Gist output is order-sensitive like projection; the defining
        // property is `gist ∧ given ⇔ p ∧ given`, so the two gists must
        // be equivalent in the context of `given`.
        let half_dense = build_dense(num_vars, &cons[..cons.len() / 2]);
        let gist_a = gist(&dense, &half_dense).unwrap();
        let gist_b = gist(&adv, &half_dense).unwrap();
        let in_context = |g: &Problem| {
            let mut p = half_dense.clone();
            p.and(g).unwrap();
            p
        };
        let (ctx_a, ctx_b) = (in_context(&gist_a), in_context(&gist_b));
        assert!(
            omega::implies_with(&ctx_a, &ctx_b, &mut budget).unwrap()
                && omega::implies_with(&ctx_b, &ctx_a, &mut budget).unwrap(),
            "iter {iter}: gists diverged in context"
        );

        // And like projections, gists of the canonical forms render
        // byte-identically — the render-boundary contract.
        assert_eq!(
            gist(&dense.canonicalized(), &half_dense).unwrap().to_string(),
            gist(&adv.canonicalized(), &half_dense).unwrap().to_string(),
            "iter {iter}: canonical gist renderings diverged"
        );
    }
    assert!(
        exact_set_checks >= 100,
        "only {exact_set_checks}/200 projections were exactly compared"
    );
}

/// The dense scratch tableau is the second representation the solver
/// core keeps: queries run on a flat coefficient matrix and convert
/// back to interned rows only at canonical boundaries. Like the
/// construction path above, the representation must be unobservable —
/// rows → tableau → rows round-trips preserve the canonical digest and
/// the exact constraint content, and running the solver on the tableau
/// (`dense_kernel: true`, the default) must produce the same verdicts,
/// the same budget spend, and byte-identical projections as the
/// interned-row pipeline (`dense_kernel: false`). Runs on the harness
/// property framework so failures shrink to a minimal constraint
/// system and replay by `HARNESS_CASE_SEED`.
#[test]
fn tableau_representation_cannot_be_observed() {
    use harness::prop::{check_with, shrink_vec, Config};
    use omega::{Budget, SolverOptions};

    const NUM_VARS: usize = 4;

    let generate = |rng: &mut harness::Rng| -> Vec<RawConstraint> {
        let num_cons = rng.gen_range_usize(1..=8);
        (0..num_cons)
            .map(|_| RawConstraint {
                coeffs: (0..NUM_VARS).map(|_| rng.gen_range_i64(-3..=3)).collect(),
                constant: rng.gen_range_i64(-8..=8),
                is_eq: rng.gen_bool(0.25),
            })
            .collect()
    };

    // Element shrink: zero out one coefficient, halve the constant
    // toward zero, or demote an equality to an inequality — each keeps
    // the constraint well-formed while making it strictly simpler.
    let shrink_con = |c: &RawConstraint| -> Vec<RawConstraint> {
        let mut out = Vec::new();
        for (i, &k) in c.coeffs.iter().enumerate() {
            if k != 0 {
                let mut s = c.clone();
                s.coeffs[i] = 0;
                out.push(s);
            }
        }
        if c.constant != 0 {
            let mut s = c.clone();
            s.constant /= 2;
            out.push(s);
        }
        if c.is_eq {
            let mut s = c.clone();
            s.is_eq = false;
            out.push(s);
        }
        out
    };

    let rows_budget = || {
        Budget::default().with_options(SolverOptions {
            dense_kernel: false,
            ..SolverOptions::default()
        })
    };

    check_with(
        &Config::with_cases(192),
        generate,
        |cons| shrink_vec(cons, shrink_con, 1),
        |cons: &Vec<RawConstraint>| {
            let p = build_dense(NUM_VARS, cons);

            // Round-trip through the dense tableau: digest and exact
            // per-constraint content (expression, relation, color) are
            // preserved, so a tableau-built problem is
            // indistinguishable at every canonical boundary.
            let rt = omega::tableau_roundtrip(&p);
            prop_assert_eq!(
                p.canonical_digest(),
                rt.canonical_digest(),
                "round-trip changed the canonical digest"
            );
            prop_assert_eq!(p.to_string(), rt.to_string(), "round-trip changed the rendering");
            prop_assert_eq!(p.eqs().len(), rt.eqs().len(), "round-trip changed the eq count");
            prop_assert_eq!(p.geqs().len(), rt.geqs().len(), "round-trip changed the geq count");
            for (a, b) in p
                .eqs()
                .iter()
                .chain(p.geqs())
                .zip(rt.eqs().iter().chain(rt.geqs()))
            {
                prop_assert_eq!(a.expr(), b.expr(), "round-trip changed a constraint expression");
                prop_assert_eq!(
                    a.relation(),
                    b.relation(),
                    "round-trip changed a constraint relation"
                );
                prop_assert_eq!(a.color(), b.color(), "round-trip changed a constraint color");
            }

            // Satisfiability: same verdict (or same error) and the same
            // budget spend on both kernels — the parity contract that
            // keeps reports byte-identical under `dense_kernel` off.
            let mut dense = Budget::default();
            let mut rows = rows_budget();
            let vd = p.is_satisfiable_with(&mut dense);
            let vr = p.is_satisfiable_with(&mut rows);
            prop_assert_eq!(
                format!("{vd:?}"),
                format!("{vr:?}"),
                "dense and row kernels disagreed on satisfiability"
            );
            prop_assert_eq!(
                dense.remaining(),
                rows.remaining(),
                "dense and row kernels spent different budgets on sat"
            );

            // Projection onto the first two variables: identical input,
            // deterministic algorithm — dark, real and every splinter
            // must render byte-identically, and again for the same cost.
            let keep: Vec<VarId> = p.var_ids().take(2).collect();
            let mut dense = Budget::default();
            let mut rows = rows_budget();
            let render = |r: &Result<omega::Projection, omega::Error>| match r {
                Ok(proj) => {
                    let splinters: Vec<String> =
                        proj.splinters().iter().map(|s| s.to_string()).collect();
                    format!("{} | {} | {splinters:?}", proj.dark(), proj.real())
                }
                Err(e) => format!("error: {e:?}"),
            };
            let pd = p.project_with(&keep, &mut dense);
            let pr = p.project_with(&keep, &mut rows);
            prop_assert_eq!(
                render(&pd),
                render(&pr),
                "dense and row kernels produced different projections"
            );
            prop_assert_eq!(
                dense.remaining(),
                rows.remaining(),
                "dense and row kernels spent different budgets on projection"
            );
            Ok(())
        },
    );
}

/// The base-tableau checkpoint is the third representation choice the
/// solver core hides: on a memo miss over an eligible base, the kernel
/// may resume a recorded checkpoint (base equalities already eliminated)
/// instead of solving `base ∧ delta` cold. Whether it resumed, rebuilt,
/// or never recorded must be unobservable through the public API:
/// identical verdicts, byte-identical projection renderings, and
/// identical budget spends with `base_checkpoint` on and off. Each delta
/// schedule runs twice per side against a fresh cache, so the second
/// round exercises the record-on-second-miss policy (round one: miss,
/// no record; repeated base misses: record then resume) and memo hits.
/// Failures shrink to a minimal base × delta schedule.
#[test]
fn checkpoint_resume_cannot_be_observed() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use harness::prop::{check_with, Config};
    use omega::{Budget, PairContext, ProblemLike, SolverCache, SolverOptions};

    const NUM_VARS: usize = 4;

    #[derive(Clone, Debug)]
    struct Case {
        base: Vec<RawConstraint>,
        // Each delta is a small constraint batch layered over the base.
        deltas: Vec<Vec<RawConstraint>>,
    }

    let generate = |rng: &mut harness::Rng| -> Case {
        let base: Vec<RawConstraint> = (0..rng.gen_range_usize(1..=6))
            .map(|_| RawConstraint {
                coeffs: (0..NUM_VARS).map(|_| rng.gen_range_i64(-3..=3)).collect(),
                constant: rng.gen_range_i64(-8..=8),
                is_eq: rng.gen_bool(0.4),
            })
            .collect();
        let deltas = (0..rng.gen_range_usize(2..=4))
            .map(|_| {
                (0..rng.gen_range_usize(1..=2))
                    .map(|_| {
                        // Mostly fresh inequalities (the resumable shape);
                        // sometimes an exact copy of a base constraint, so
                        // duplicate-equality deltas and merge tie-breaks
                        // are exercised too.
                        if !base.is_empty() && rng.gen_bool(0.2) {
                            base[rng.gen_range_usize(0..=base.len() - 1)].clone()
                        } else {
                            RawConstraint {
                                coeffs: (0..NUM_VARS)
                                    .map(|_| rng.gen_range_i64(-3..=3))
                                    .collect(),
                                constant: rng.gen_range_i64(-8..=8),
                                is_eq: false,
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        Case { base, deltas }
    };

    // Shrink: drop or simplify a base constraint, drop a whole delta, or
    // simplify a delta constraint — every candidate is a strictly
    // smaller schedule.
    let shrink = |case: &Case| -> Vec<Case> {
        let mut out = Vec::new();
        for i in 0..case.base.len() {
            let mut s = case.clone();
            s.base.remove(i);
            out.push(s);
        }
        for i in 0..case.deltas.len() {
            let mut s = case.clone();
            s.deltas.remove(i);
            out.push(s);
        }
        let shrink_con = |c: &RawConstraint| -> Vec<RawConstraint> {
            let mut v = Vec::new();
            for (i, &k) in c.coeffs.iter().enumerate() {
                if k != 0 {
                    let mut s = c.clone();
                    s.coeffs[i] = 0;
                    v.push(s);
                }
            }
            if c.constant != 0 {
                let mut s = c.clone();
                s.constant /= 2;
                v.push(s);
            }
            v
        };
        for (bi, c) in case.base.iter().enumerate() {
            for s in shrink_con(c) {
                let mut sc = case.clone();
                sc.base[bi] = s;
                out.push(sc);
            }
        }
        for (di, d) in case.deltas.iter().enumerate() {
            for (ci, c) in d.iter().enumerate() {
                for s in shrink_con(c) {
                    let mut sc = case.clone();
                    sc.deltas[di][ci] = s;
                    out.push(sc);
                }
            }
        }
        out
    };

    let resumes = Arc::new(AtomicU64::new(0));
    let resumes_seen = resumes.clone();

    check_with(
        &Config::with_cases(160),
        generate,
        shrink,
        move |case: &Case| {
            // One side per flag value, each against its own fresh cache:
            // every observable from every query, in order.
            let run = |checkpoint: bool| -> (Vec<String>, u64) {
                let cache = Arc::new(SolverCache::new());
                let options = SolverOptions {
                    base_checkpoint: checkpoint,
                    ..SolverOptions::default()
                };
                let budget =
                    || Budget::new(200_000).with_cache(cache.clone()).with_options(options);
                let base = build_dense(NUM_VARS, &case.base);
                let keep: Vec<VarId> = base.var_ids().take(2).collect();
                let vars: Vec<VarId> = base.var_ids().collect();
                let ctx = PairContext::new(base, &budget());
                let mut out = Vec::new();
                for round in 0..2 {
                    for (di, delta) in case.deltas.iter().enumerate() {
                        let mut dp = ctx.derive();
                        for c in delta {
                            let mut e = LinExpr::constant_expr(c.constant);
                            for (v, &k) in vars.iter().zip(&c.coeffs) {
                                e.set_coef(*v, k);
                            }
                            if c.is_eq {
                                dp.add_eq(e);
                            } else {
                                dp.add_geq(e);
                            }
                        }
                        let mut b = budget();
                        let sat = dp.is_satisfiable_with(&mut b);
                        out.push(format!("r{round} d{di} sat {sat:?} rem {}", b.remaining()));
                        let mut b = budget();
                        let proj = match dp.project_with(&keep, &mut b) {
                            Ok(p) => {
                                let splinters: Vec<String> =
                                    p.splinters().iter().map(|s| s.to_string()).collect();
                                format!("{} | {} | {splinters:?}", p.dark(), p.real())
                            }
                            Err(e) => format!("error: {e:?}"),
                        };
                        out.push(format!("r{round} d{di} proj {proj} rem {}", b.remaining()));
                    }
                }
                (out, cache.stats().checkpoint_resumes)
            };
            let (on, on_resumes) = run(true);
            let (off, off_resumes) = run(false);
            prop_assert_eq!(
                on,
                off,
                "base_checkpoint on/off diverged (on resumed {on_resumes} times)"
            );
            prop_assert_eq!(off_resumes, 0, "disabled checkpointing still resumed");
            resumes.fetch_add(on_resumes, Ordering::Relaxed);
            Ok(())
        },
    );
    // The property is vacuous if the resume path never fires: across the
    // schedules (each base re-missed in round two after a second-miss
    // recording) a healthy fraction must actually resume.
    assert!(
        resumes_seen.load(Ordering::Relaxed) > 0,
        "no schedule ever took the checkpoint resume path"
    );
}

/// The digest is insensitive to representation, not to meaning: adding
/// a constraint that actually changes the system must change it.
#[test]
fn canonical_digest_distinguishes_different_systems() {
    let mut p = Problem::new();
    let i = p.add_var("i", VarKind::Input);
    p.add_geq(LinExpr::term(1, i)); // i >= 0
    let d0 = p.canonical_digest();

    let mut q = p.clone();
    q.add_geq(LinExpr::term(-1, i).plus_const(10)); // i <= 10
    assert_ne!(d0, q.canonical_digest());

    // Re-adding an equivalent (scaled) form of an existing constraint
    // does not change the digest.
    let mut r = p.clone();
    r.add_geq(LinExpr::term(3, i)); // 3i >= 0, canonically i >= 0
    assert_eq!(d0, r.canonical_digest());
}
