//! Integration tests for §5 (Examples 7–11) through the public API.

use depend::{AccessSite, ArrayProperty, OrderCase, SymbolicPair};
use omega::Budget;
use tiny::ast::name_key;

fn setup(src: &str) -> tiny::ProgramInfo {
    tiny::analyze(&tiny::Program::parse(src).unwrap()).unwrap()
}

#[test]
fn example7_conditions_match_the_paper() {
    let src = format!("assume 50 <= n <= 100;\n{}", tiny::corpus::EXAMPLE_7);
    let info = setup(&src);
    let pair = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Read(0)).unwrap();
    let keep = pair.keep_vars(&["x", "y", "m"]);
    let mut budget = Budget::default();
    let conditions = pair.conditions(&info, &keep, &mut budget).unwrap();
    assert_eq!(conditions.len(), 2, "two restraint vectors: (+,*) and (0,+)");

    // Carried at L1: {1 <= x <= 50}.
    let outer = conditions
        .iter()
        .find(|c| c.order == OrderCase::CarriedAt(1))
        .unwrap();
    let rendered = outer.condition.to_string();
    assert!(
        rendered.contains("x - 1 >= 0") && rendered.contains("-x + 50 >= 0"),
        "expected 1 <= x <= 50, got {rendered}"
    );

    // Carried at L2: {x = 0 and y < m}.
    let inner = conditions
        .iter()
        .find(|c| c.order == OrderCase::CarriedAt(2))
        .unwrap();
    let rendered = inner.condition.to_string();
    assert!(
        rendered.contains("x = 0") && rendered.contains("m - y - 1 >= 0"),
        "expected x = 0 and y < m, got {rendered}"
    );
}

#[test]
fn example7_without_assertion_no_upper_bound_on_x() {
    // Without 50 <= n <= 100 the condition on x has no constant upper
    // bound (it depends on n, which is projected away as unbounded).
    let info = setup(tiny::corpus::EXAMPLE_7);
    let pair = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Read(0)).unwrap();
    let keep = pair.keep_vars(&["x", "y", "m"]);
    let mut budget = Budget::default();
    let conditions = pair.conditions(&info, &keep, &mut budget).unwrap();
    let outer = conditions
        .iter()
        .find(|c| c.order == OrderCase::CarriedAt(1))
        .unwrap();
    let x = pair.space.sym("x").unwrap();
    assert!(
        !outer
            .condition
            .geqs()
            .iter()
            .any(|g| g.expr().coef(x) < 0),
        "no upper bound on x expected: {}",
        outer.condition
    );
}

#[test]
fn example8_queries_and_answers() {
    let info = setup(tiny::corpus::EXAMPLE_8);
    let mut budget = Budget::default();

    // Output dependence: asks whether Q[a] = Q[b] can happen for a < b.
    let out_pair =
        SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Write).unwrap();
    let mut keep = out_pair.occurrence_vars();
    keep.extend(out_pair.keep_vars(&["n"]));
    let cs = out_pair.conditions(&info, &keep, &mut budget).unwrap();
    assert_eq!(cs.len(), 1);
    assert!(
        cs[0].condition.eqs().len() == 1 && cs[0].condition.geqs().is_empty(),
        "the only new information is the value equality: {}",
        cs[0].condition
    );
    assert!(!out_pair
        .exists_with_property(&info, "q", ArrayProperty::Injective, &mut budget)
        .unwrap());

    // Flow dependence: Q[a] = Q[b] - 1 survives monotonicity.
    let a_read = info
        .stmt(1)
        .reads
        .iter()
        .position(|r| name_key(&r.array) == "a")
        .unwrap();
    let flow_pair =
        SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Read(a_read)).unwrap();
    assert!(flow_pair
        .exists_with_property(&info, "q", ArrayProperty::StrictlyIncreasing, &mut budget)
        .unwrap());
    assert!(!flow_pair
        .exists_with_property(&info, "q", ArrayProperty::StrictlyDecreasing, &mut budget)
        .unwrap());
}

#[test]
fn example9_bounds_from_index_arrays() {
    let info = setup(tiny::corpus::EXAMPLE_9);
    let pair = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Write).unwrap();
    assert!(pair.table.of_array("b").count() >= 2, "B occurrences from bounds");
    let mut budget = Budget::default();
    let keep = pair.occurrence_vars();
    assert!(pair.conditions(&info, &keep, &mut budget).unwrap().is_empty());
}

#[test]
fn example10_nonlinear_products() {
    let info = setup(tiny::corpus::EXAMPLE_10);
    let pair = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Write).unwrap();
    assert_eq!(pair.table.of_array("mul").count(), 2);
    let mut budget = Budget::default();
    let keep = pair.occurrence_vars();
    let cs = pair.conditions(&info, &keep, &mut budget).unwrap();
    assert!(!cs.is_empty());
}

#[test]
fn example11_vectorizes() {
    let info = setup(tiny::corpus::EXAMPLE_11);
    let mut budget = Budget::default();
    assert!(depend::increasing_scalars(&info, &mut budget)
        .unwrap()
        .contains("k"));
    let a_read = info
        .stmt(1)
        .reads
        .iter()
        .position(|r| name_key(&r.array) == "a")
        .unwrap();
    for (src_site, dst_site) in [
        (AccessSite::Write, AccessSite::Read(a_read)), // flow
        (AccessSite::Write, AccessSite::Write),        // output
    ] {
        let pair = SymbolicPair::new(&info, 1, src_site, 1, dst_site).unwrap();
        let exists = pair
            .exists_with_increasing_scalar(&info, "k", &mut budget)
            .unwrap();
        if dst_site == AccessSite::Write {
            assert!(!exists, "no output dependence across iterations");
        } else {
            assert!(!exists, "no loop-carried flow on a(k)");
        }
    }
    // The anti dependence read -> write within one iteration remains.
    let pair = SymbolicPair::new(&info, 1, AccessSite::Read(a_read), 1, AccessSite::Write)
        .unwrap();
    assert!(pair
        .exists_with_increasing_scalar(&info, "k", &mut budget)
        .unwrap());
}

#[test]
fn questions_render_for_humans() {
    let src = format!("assume 50 <= n <= 100;\n{}", tiny::corpus::EXAMPLE_7);
    let info = setup(&src);
    let pair = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Read(0)).unwrap();
    let keep = pair.keep_vars(&["x", "y", "m"]);
    let mut budget = Budget::default();
    let cs = pair.conditions(&info, &keep, &mut budget).unwrap();
    for c in &cs {
        let q = c.question();
        assert!(
            q.contains("never happens"),
            "question should be phrased like the paper's: {q}"
        );
    }
}

#[test]
fn unconditional_dependence_has_trivial_condition() {
    // a(i) := a(i-1): the flow dependence exists whenever the loop runs,
    // with no extra symbolic conditions.
    let info = setup("sym n; for i := 2 to n do a(i) := a(i-1); endfor");
    let pair = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Read(0)).unwrap();
    let keep = pair.keep_vars(&["n"]);
    let mut budget = Budget::default();
    let cs = pair.conditions(&info, &keep, &mut budget).unwrap();
    assert_eq!(cs.len(), 1);
    // Projecting onto n: the dependence needs n >= 3 (two iterations);
    // with n kept, that bound IS the new information. Everything else is
    // unconditionally true.
    let cond = &cs[0].condition;
    assert!(
        cond.geqs().len() <= 1 && cond.eqs().is_empty(),
        "at most the loop-population bound: {cond}"
    );
}

#[test]
fn example9_monotone_bounds_decouple_rows() {
    // With B strictly increasing, row i's j-range [B[i], B[i+1]-1] is
    // disjoint from row i+1's: the (fictitious) flow between different
    // rows of A through a shared j cannot exist... verify at least that
    // the machinery accepts the property without error and the self
    // output dependence stays impossible.
    let info = setup(tiny::corpus::EXAMPLE_9);
    let pair = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Write).unwrap();
    let mut budget = Budget::default();
    let exists = pair
        .exists_with_property(&info, "b", depend::ArrayProperty::StrictlyIncreasing, &mut budget)
        .unwrap();
    assert!(!exists, "A[i,j] is written once per (i,j) regardless");
}
