//! Integration tests for `if` guards: guard constraints participate in the
//! dependence problems, separating accesses that share subscripts but can
//! never touch the same elements.

use depend::{analyze_program, Config};
use tiny::{analyze, Program, Stmt};

fn run(src: &str) -> (tiny::ProgramInfo, depend::Analysis) {
    let program = Program::parse(src).unwrap();
    let info = analyze(&program).unwrap();
    let a = analyze_program(&info, &Config::extended()).unwrap();
    (info, a)
}

#[test]
fn parse_if_then_else() {
    let p = Program::parse(
        "
        sym n, k;
        for i := 1 to n do
          if i <= k then
            a(i) := 0;
          else
            b(i) := 1;
          endif
        endfor
        ",
    )
    .unwrap();
    let Stmt::For(f) = &p.stmts[0] else { panic!() };
    let Stmt::If(c) = &f.body[0] else { panic!() };
    assert_eq!(c.conds.len(), 1);
    assert_eq!(c.then_body.len(), 1);
    assert_eq!(c.else_body.len(), 1);
}

#[test]
fn guards_recorded_with_negation() {
    let info = analyze(
        &Program::parse(
            "
            sym n, k;
            for i := 1 to n do
              if i <= k then
                a(i) := 0;
              else
                a(i) := 1;
              endif
            endfor
            ",
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(info.stmts.len(), 2);
    assert!(!info.stmts[0].guards[0].negated);
    assert!(info.stmts[1].guards[0].negated);
    // Both under the same loop.
    assert_eq!(info.stmts[0].common_loops(&info.stmts[1]), 1);
    assert!(info.stmts[0].lexically_before(&info.stmts[1]));
}

#[test]
fn disjoint_guard_ranges_eliminate_dependences() {
    // Then and else branches write the same subscripts, but the guards
    // are mutually exclusive within one iteration: no loop-independent
    // output dependence (and since the guard is loop-invariant here, no
    // carried one either).
    let (_, a) = run(
        "
        sym n, k;
        for i := 1 to n do
          if i <= k then
            a(i) := 0;
          else
            a(i) := 1;
          endif
        endfor
        ",
    );
    assert!(
        a.outputs.is_empty(),
        "guarded writes never overlap: {:?}",
        a.outputs.iter().map(|d| (d.src, d.dst)).collect::<Vec<_>>()
    );
}

#[test]
fn guard_constraints_refine_flow_sources() {
    // The read under `i >= k+1` can only see writes from iterations
    // with i <= k, i.e. the flow from the guarded write exists but is
    // carried; the reverse flow cannot exist.
    let (_, a) = run(
        "
        sym n, k;
        for i := 1 to n do
          if i <= k then
            a(i) := 0;
          endif
        endfor
        for i := 1 to n do
          if i >= k+1 then
            x := a(i);
          endif
        endfor
        ",
    );
    assert!(
        !a.flows.iter().any(|d| d.src.label == 1 && d.dst.label == 2),
        "write range [1,k] and read range [k+1,n] are disjoint"
    );
}

#[test]
fn boundary_guard_kills() {
    // A guarded re-initialization of the first element kills the original
    // write for that element only: the general flow survives.
    let (_, a) = run(
        "
        sym n;
        for i := 1 to n do
          a(i) := 0;
          if i = 1 then
            a(i) := 7;
          endif
        endfor
        for i := 1 to n do
          x := a(i);
        endfor
        ",
    );
    let d1 = a
        .flows
        .iter()
        .find(|d| d.src.label == 1 && d.dst.label == 3)
        .unwrap();
    assert!(d1.is_live(), "only a(1) is overwritten; a(2..n) still flows");
    let d2 = a
        .flows
        .iter()
        .find(|d| d.src.label == 2 && d.dst.label == 3)
        .unwrap();
    assert!(d2.is_live());
}

#[test]
fn full_guard_coverage_kills() {
    // The guarded writes jointly cover the read, and the second write's
    // guard range alone kills the first's flow inside [1, k].
    let (_, a) = run(
        "
        sym n, k;
        assume 1 <= k <= n;
        for i := 1 to n do
          a(i) := 0;
        endfor
        for i := 1 to n do
          a(i) := 1;
        endfor
        for i := 1 to n do
          x := a(i);
        endfor
        ",
    );
    let d = a
        .flows
        .iter()
        .find(|d| d.src.label == 1 && d.dst.label == 3)
        .unwrap();
    assert!(!d.is_live(), "unguarded full overwrite still kills");
}

#[test]
fn pretty_printer_roundtrips_conditionals() {
    let src = "
        sym n, k;
        for i := 1 to n do
          if i <= k && i >= 2 then
            a(i) := 0;
          else
            a(i) := 1;
          endif
        endfor
    ";
    let p1 = Program::parse(src).unwrap();
    let printed = p1.to_string();
    let p2 = Program::parse(&printed).unwrap();
    assert_eq!(p1.stmts, p2.stmts, "{printed}");
}

#[test]
fn multi_condition_else_is_conservative() {
    // else of a 2-relation condition carries no constraint: the output
    // dependence must be (conservatively) assumed.
    let (_, a) = run(
        "
        sym n, k;
        for i := 1 to n do
          if i <= k && i >= 2 then
            a(i) := 0;
          else
            a(i) := 1;
          endif
        endfor
        ",
    );
    assert!(
        !a.outputs.is_empty(),
        "¬(p ∧ q) is disjunctive: the else branch is unconstrained"
    );
}
