//! End-to-end tests of `tinydep --serve`: the line-delimited JSON
//! protocol over stdio and Unix sockets, byte identity of server
//! responses with one-shot reports and the checked-in goldens, the
//! shared-cache warm path, the persistent cache file, panic containment
//! at the request boundary, and a soak that gates row-store growth,
//! base-intern occupancy and the warm-hit floor.

use std::io::{BufRead as _, BufReader, Write as _};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use omega_repro::json::{self, Json};
use omega_repro::server::{render_text_report, ReportView};

fn tinydep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tinydep"))
}

/// A stdio server session with a strict send/receive discipline: the
/// test writes a bounded burst of requests, then reads the responses,
/// so neither side can fill a pipe while the other is blocked.
struct Session {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Session {
    fn start(args: &[&str]) -> Session {
        let mut child = tinydep()
            .arg("--serve")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("tinydep --serve starts");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Session {
            child,
            stdin,
            stdout,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("server accepts requests");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).expect("server responds");
        assert!(n > 0, "server closed its stdout early");
        line.trim_end_matches('\n').to_string()
    }

    /// Closes stdin (EOF shutdown) and waits for a clean exit.
    fn finish(mut self) {
        drop(self.stdin);
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "server exited with {status}");
    }
}

/// Decodes the `report` payload of a successful analyze response.
fn report_of(line: &str) -> String {
    let v = json::parse(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"));
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {line}"
    );
    v.get("report")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no report in {line}"))
        .to_string()
}

/// The one-shot report for a corpus program, rendered through the same
/// shared path the CLI uses — the byte-identity baseline.
fn one_shot_report(source: &str) -> String {
    let program = tiny::Program::parse(source).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let analysis = depend::analyze_program(&info, &depend::Config::extended()).unwrap();
    render_text_report(&info, &analysis, &ReportView::default())
}

#[test]
fn protocol_errors_do_not_kill_the_server() {
    let mut s = Session::start(&[]);
    // Each burst below is write-then-read, so ordering is exact.
    s.send("this is not json");
    assert!(s.recv().contains("\"ok\":false,\"error\":\"bad request"));
    s.send(""); // blank lines are skipped, not answered
    s.send("{\"id\":1,\"op\":\"frobnicate\"}");
    let r = s.recv();
    assert!(r.contains("\"id\":1") && r.contains("unknown op"), "{r}");
    s.send("{\"id\":2,\"op\":\"analyze\",\"corpus\":\"no_such_program\"}");
    assert!(s.recv().contains("no corpus program"), "bad corpus must error");
    s.send("{\"id\":3,\"op\":\"analyze\",\"source\":\"for i := 1 to\"}");
    assert!(s.recv().contains("\"ok\":false"), "parse errors must be errors");
    // The server is still alive and answers.
    s.send("{\"id\":4,\"op\":\"ping\"}");
    assert_eq!(s.recv(), "{\"id\":4,\"ok\":true,\"pong\":true}");
    s.finish();
}

#[test]
fn soak_bounded_rows_warm_hits_and_byte_identical_reports() {
    // The soak gate: many requests cycling the whole corpus through one
    // server. Every response must be byte-identical to the one-shot
    // report; quiescent live-row counts must be flat once the cache is
    // warm (the GC sweeps request-local rows between batches); and the
    // warm-hit rate must clear the floor.
    let n: usize = std::env::var("TINYDEP_SOAK_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let corpus = tiny::corpus::all();
    let expected: Vec<String> = corpus.iter().map(|e| one_shot_report(e.source)).collect();

    let mut s = Session::start(&["--threads=4"]);
    const CHUNK: usize = 100;
    let mut live_samples: Vec<i64> = Vec::new();
    let mut final_stats: Option<Json> = None;
    let mut sent = 0usize;
    while sent < n {
        let burst = CHUNK.min(n - sent);
        for i in sent..sent + burst {
            let name = corpus[i % corpus.len()].name;
            s.send(&format!(
                "{{\"id\":{},\"op\":\"analyze\",\"corpus\":\"{name}\"}}",
                i + 1
            ));
        }
        for i in sent..sent + burst {
            let line = s.recv();
            let v = json::parse(&line).unwrap();
            assert_eq!(
                v.get("id").and_then(Json::as_i64),
                Some(i as i64 + 1),
                "responses out of order: {line}"
            );
            assert_eq!(
                report_of(&line),
                expected[i % corpus.len()],
                "request {} ({}) diverged from the one-shot report",
                i + 1,
                corpus[i % corpus.len()].name
            );
        }
        sent += burst;
        // The server is quiescent now (all responses read), so this
        // stats request forms its own batch and observes the post-GC
        // steady state.
        s.send(&format!("{{\"id\":{},\"op\":\"stats\"}}", 900_000 + sent));
        let v = json::parse(&s.recv()).unwrap();
        let stats = v.get("stats").expect("stats object").clone();
        let live = stats
            .get("rows")
            .and_then(|r| r.get("live"))
            .and_then(Json::as_i64)
            .expect("live row count");
        if sent >= corpus.len() {
            live_samples.push(live);
        }
        final_stats = Some(stats);
    }
    // An injected panicking request must not kill the soak server: it
    // answers with an error and the next request still works.
    s.send("{\"id\":999998,\"op\":\"panic\"}");
    let r = s.recv();
    assert!(
        r.contains("\"ok\":false") && r.contains("panicked"),
        "panic op not contained: {r}"
    );
    s.send("{\"id\":999999,\"op\":\"shutdown\"}");
    assert!(s.recv().contains("\"shutdown\":true"));
    let status = s.child.wait().expect("server exits");
    assert!(status.success());

    // Flat live-row profile: every warm-phase sample stays within 2x of
    // the smallest. Without the between-batch GC the dead-entry index
    // (and with a leak, the live count) would climb with every request.
    let (&min, &max) = (
        live_samples.iter().min().expect("at least one warm sample"),
        live_samples.iter().max().unwrap(),
    );
    assert!(
        max <= min * 2,
        "live rows grew across the soak: samples {live_samples:?}"
    );

    let stats = final_stats.unwrap();
    let cache = stats.get("cache").expect("cache stats");
    let (hits, misses) = (
        cache.get("hits").and_then(Json::as_i64).unwrap(),
        cache.get("misses").and_then(Json::as_i64).unwrap(),
    );
    let hit_rate = hits as f64 / (hits + misses) as f64;
    assert!(
        hit_rate >= 0.40,
        "warm-hit rate {hit_rate:.3} below the 0.40 floor ({hits} hits / {misses} misses)"
    );
    // Dead index entries are bounded by the sweep threshold.
    let dead = stats
        .get("rows")
        .and_then(|r| r.get("dead"))
        .and_then(Json::as_i64)
        .unwrap();
    assert!(dead <= 4096, "dead row-index entries unswept: {dead}");
    // The base intern stays bounded across the whole soak — the cap and
    // sweep keep resident forms at or under MAX_BASES no matter how
    // many requests went through.
    let base_forms = cache.get("base_forms").and_then(Json::as_i64).unwrap();
    assert!(base_forms > 0, "no base forms resident after the soak");
    assert!(
        base_forms <= 4096,
        "base intern grew without bound: {base_forms} resident forms"
    );
}

#[test]
fn a_panicking_request_is_contained_to_its_response() {
    let mut s = Session::start(&["--threads=4"]);
    // A burst with a panicking request in the middle: every request in
    // the batch still answers, in order, and only the offender errors.
    s.send("{\"id\":1,\"op\":\"analyze\",\"corpus\":\"example2\"}");
    s.send("{\"id\":2,\"op\":\"panic\"}");
    s.send("{\"id\":3,\"op\":\"analyze\",\"corpus\":\"example2\"}");
    let first = s.recv();
    assert!(
        first.contains("\"id\":1") && first.contains("\"ok\":true"),
        "{first}"
    );
    let second = s.recv();
    assert!(
        second.contains("\"id\":2")
            && second.contains("\"ok\":false")
            && second.contains("panicked"),
        "{second}"
    );
    let third = s.recv();
    assert!(
        third.contains("\"id\":3") && third.contains("\"ok\":true"),
        "{third}"
    );
    // The daemon survives and keeps serving.
    s.send("{\"id\":4,\"op\":\"ping\"}");
    assert_eq!(s.recv(), "{\"id\":4,\"ok\":true,\"pong\":true}");
    s.finish();
}

#[test]
fn repeat_requests_are_served_warm() {
    let mut s = Session::start(&[]);
    for id in 1..=3 {
        s.send(&format!(
            "{{\"id\":{id},\"op\":\"analyze\",\"corpus\":\"example2\"}}"
        ));
        s.recv();
    }
    s.send("{\"id\":4,\"op\":\"stats\"}");
    let v = json::parse(&s.recv()).unwrap();
    let cache = v.get("stats").and_then(|s| s.get("cache")).unwrap();
    let hits = cache.get("hits").and_then(Json::as_i64).unwrap();
    let inserts = cache.get("inserts").and_then(Json::as_i64).unwrap();
    assert!(hits > 0, "repeat requests never hit the shared cache");
    // Only the first (cold) request may insert; the repeats are warm.
    let misses = cache.get("misses").and_then(Json::as_i64).unwrap();
    assert_eq!(misses, inserts, "a warm request re-inserted entries");
    s.finish();
}

#[test]
fn parallelize_op_matches_the_one_shot_report_and_the_golden() {
    // The server's `parallelize` op must render through the same path
    // as `tinydep --parallelize`, so its report is byte-identical to
    // both the library rendering and the checked-in golden.
    let one_shot = |name: &str| {
        let entry = tiny::corpus::by_name(name).unwrap();
        let program = tiny::Program::parse(entry.source).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let analysis =
            depend::analyze_program(&info, &depend::Config::extended()).unwrap();
        let graph = depend::DepGraph::new(&info, &analysis);
        depend::render_parallelize_report(&program, &graph)
    };
    let mut s = Session::start(&[]);
    s.send("{\"id\":1,\"op\":\"parallelize\",\"corpus\":\"cholsky\"}");
    let cholsky = report_of(&s.recv());
    assert_eq!(cholsky, one_shot("cholsky"));
    assert_eq!(cholsky, include_str!("golden/cholsky_parallelize.txt"));
    s.send("{\"id\":2,\"op\":\"parallelize\",\"corpus\":\"gauss_jordan\"}");
    let gj = report_of(&s.recv());
    assert_eq!(gj, one_shot("gauss_jordan"));
    assert_eq!(gj, include_str!("golden/gauss_jordan_parallelize.txt"));
    // Inline source works too, and bad programs answer with an error
    // instead of killing the server.
    s.send(
        "{\"id\":3,\"op\":\"parallelize\",\"source\":\"sym n; for i := 1 to n do a(i) := a(i) + 1; endfor\"}",
    );
    let inline = report_of(&s.recv());
    assert!(inline.contains("!$ PARALLELIZABLE"), "{inline}");
    s.send("{\"id\":4,\"op\":\"parallelize\",\"source\":\"for i := 1 to\"}");
    assert!(s.recv().contains("\"ok\":false"), "parse errors must be errors");
    s.finish();
}

#[test]
fn server_cache_file_is_saved_at_shutdown_and_warms_the_next_start() {
    let path = std::env::temp_dir().join(format!(
        "omega_serve_cache_{}.cache",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let cache_arg = format!("--cache-file={}", path.display());

    let mut s = Session::start(&[&cache_arg]);
    s.send("{\"id\":1,\"op\":\"analyze\",\"corpus\":\"cholsky\"}");
    s.recv();
    s.finish(); // EOF shutdown saves the cache

    let bytes = std::fs::read(&path).expect("server saved the cache file");
    assert!(
        bytes.starts_with(b"omega-solver-cache "),
        "saved cache file has no header"
    );

    // A fresh server over the same file is warm from the first request.
    let mut s = Session::start(&[&cache_arg]);
    s.send("{\"id\":1,\"op\":\"analyze\",\"corpus\":\"cholsky\"}");
    s.recv();
    s.send("{\"id\":2,\"op\":\"stats\"}");
    let v = json::parse(&s.recv()).unwrap();
    let cache = v.get("stats").and_then(|s| s.get("cache")).unwrap();
    assert_eq!(
        cache.get("misses").and_then(Json::as_i64),
        Some(0),
        "persisted cache did not warm the next server: {}",
        v.get("stats").unwrap().get("cache").is_some()
    );
    s.finish();
    let _ = std::fs::remove_file(&path);
}

#[cfg(unix)]
#[test]
fn concurrent_socket_clients_match_the_goldens() {
    use std::os::unix::net::UnixStream;

    let sock = std::env::temp_dir().join(format!("omega_serve_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let mut child = tinydep()
        .arg(format!("--serve={}", sock.display()))
        .arg("--threads=4")
        .spawn()
        .expect("socket server starts");
    // Wait for the listener to come up. The socket file appears at
    // `bind(2)` but the server only accepts after `listen(2)` — a
    // separate syscall inside `UnixListener::bind` — so a connect in
    // that window is refused; retry it away here and in the clients.
    let connect = |sock: &std::path::Path| -> UnixStream {
        let mut waited = 0;
        loop {
            match UnixStream::connect(sock) {
                Ok(s) => return s,
                Err(e) => {
                    assert!(waited < 10_000, "server never accepted: {e}");
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    waited += 20;
                }
            }
        }
    };

    // Each request kind must reproduce its golden byte-for-byte — the
    // same files the one-shot CLI is gated on at every thread count.
    let cases: [(&str, &str); 3] = [
        (
            "{\"id\":%,\"op\":\"analyze\",\"corpus\":\"cholsky\",\"options\":{\"all\":true}}",
            include_str!("golden/cholsky_all.txt"),
        ),
        (
            "{\"id\":%,\"op\":\"analyze\",\"corpus\":\"gauss_jordan\",\"options\":{\"all\":true}}",
            include_str!("golden/gauss_jordan_all.txt"),
        ),
        (
            "{\"id\":%,\"op\":\"analyze\",\"corpus\":\"cholsky\",\"options\":{\"format\":\"json\"}}",
            include_str!("golden/cholsky.json"),
        ),
    ];

    std::thread::scope(|scope| {
        for client in 0..8 {
            let sock = &sock;
            let cases = &cases;
            let connect = &connect;
            scope.spawn(move || {
                let stream = connect(sock);
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                for round in 0..6 {
                    let (template, golden) = &cases[(client + round) % cases.len()];
                    let id = (client * 100 + round + 1).to_string();
                    let request = template.replace('%', &id);
                    writeln!(writer, "{request}").unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let v = json::parse(line.trim_end()).unwrap();
                    assert_eq!(
                        v.get("id").and_then(Json::as_i64),
                        Some(id.parse().unwrap()),
                        "client {client}: response for another request"
                    );
                    assert_eq!(
                        v.get("report").and_then(Json::as_str),
                        Some(*golden),
                        "client {client} round {round}: report diverged from the golden"
                    );
                }
            });
        }
    });

    // One last client shuts the server down; the socket file goes away.
    let stream = connect(&sock);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "{{\"id\":1,\"op\":\"shutdown\"}}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"shutdown\":true"), "{line}");
    drop((reader, writer));
    let status = child.wait().expect("server exits");
    assert!(status.success());
    assert!(!sock.exists(), "socket file not removed at shutdown");
}
