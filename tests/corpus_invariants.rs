//! Whole-corpus invariants: properties that must hold for every program
//! in the benchmark corpus, regardless of its specific dependences.

use depend::{analyze_program, Config, DepKind};

#[test]
fn extended_analysis_only_removes_information_soundly() {
    for entry in tiny::corpus::all() {
        let program = tiny::Program::parse(entry.source).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let std = analyze_program(&info, &Config::standard()).unwrap();
        let ext = analyze_program(&info, &Config::extended()).unwrap();

        // Same pairs are examined; the extended analysis may only mark
        // some dead or refine their vectors.
        assert_eq!(std.flows.len(), ext.flows.len(), "{}", entry.name);
        assert_eq!(std.outputs.len(), ext.outputs.len(), "{}", entry.name);
        assert_eq!(std.antis.len(), ext.antis.len(), "{}", entry.name);
        assert_eq!(std.dead_flows().count(), 0, "{}", entry.name);

        for (s, e) in std.flows.iter().zip(&ext.flows) {
            assert_eq!((s.src, s.dst), (e.src, e.dst), "{}", entry.name);
            // A refined vector is a subset: entrywise interval inclusion.
            if e.is_live() {
                let su = s.summary();
                let eu = e.summary();
                for (a, b) in su.0.iter().zip(&eu.0) {
                    let lo_ok = match (a.lo, b.lo) {
                        (None, _) => true,
                        (Some(x), Some(y)) => y >= x,
                        (Some(_), None) => false,
                    };
                    let hi_ok = match (a.hi, b.hi) {
                        (None, _) => true,
                        (Some(x), Some(y)) => y <= x,
                        (Some(_), None) => false,
                    };
                    assert!(
                        lo_ok && hi_ok,
                        "{}: refined {} must be within unrefined {}",
                        entry.name,
                        eu,
                        su
                    );
                }
            }
        }
    }
}

#[test]
fn statistics_cover_every_pair_and_timing_is_monotone() {
    for entry in tiny::corpus::all() {
        let program = tiny::Program::parse(entry.source).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let ext = analyze_program(&info, &Config::extended()).unwrap();
        for p in &ext.stats.pairs {
            assert!(p.ext_ns >= p.std_ns, "{}", entry.name);
        }
        // Each flow dependence corresponds to a pair stat with a found
        // dependence.
        let found = ext.stats.pairs.iter().filter(|p| p.dep_found).count();
        assert_eq!(found, ext.flows.len(), "{}", entry.name);
    }
}

#[test]
fn dependence_kinds_are_consistent() {
    for entry in tiny::corpus::all() {
        let program = tiny::Program::parse(entry.source).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let ext = analyze_program(&info, &Config::extended()).unwrap();
        for d in &ext.flows {
            assert_eq!(d.kind, DepKind::Flow, "{}", entry.name);
        }
        for d in &ext.antis {
            assert_eq!(d.kind, DepKind::Anti, "{}", entry.name);
        }
        for d in &ext.outputs {
            assert_eq!(d.kind, DepKind::Output, "{}", entry.name);
        }
        // Forward dependences only: every live case's first non-zero
        // summary entry is non-negative.
        for d in ext.flows.iter().chain(&ext.antis).chain(&ext.outputs) {
            for c in &d.cases {
                if let Some(first) = c
                    .summary
                    .0
                    .iter()
                    .find(|e| !(e.lo == Some(0) && e.hi == Some(0)))
                {
                    assert!(
                        first.lo.unwrap_or(-1) >= 0 || first.hi.is_none(),
                        "{}: non-forward case {} in {:?} -> {:?}",
                        entry.name,
                        c.summary,
                        d.src,
                        d.dst
                    );
                }
            }
        }
    }
}

#[test]
fn baseline_never_contradicts_the_omega_test() {
    // If the baseline proves independence, the Omega test must find no
    // dependence either (on exact-subscript pairs).
    use depend::baseline::{baseline_pair_test, Verdict};
    use depend::AccessSite;

    for entry in tiny::corpus::all() {
        let program = tiny::Program::parse(entry.source).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let ext = analyze_program(&info, &Config::extended()).unwrap();
        for d in ext.flows.iter().filter(|d| d.is_live()) {
            if d.cases.iter().any(|c| !c.exact_subscripts) {
                continue;
            }
            let src = info.stmt(d.src.label);
            let dst = info.stmt(d.dst.label);
            let verdict = baseline_pair_test(src, AccessSite::Write, dst, d.dst.site);
            assert_eq!(
                verdict,
                Verdict::Maybe,
                "{}: baseline claims independence for a live dependence {:?} -> {:?}",
                entry.name,
                d.src,
                d.dst
            );
        }
    }
}
