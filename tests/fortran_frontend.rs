//! The FORTRAN frontend accepts the paper's Figure 2 verbatim and yields
//! the same analysis as the hand-translated tiny version: same statement
//! structure, same live/dead flow dependences, same Figures 3 and 4.

use std::collections::BTreeSet;

use depend::{analyze_program, Config};
use tiny::ast::name_key;

fn summarize(analysis: &depend::Analysis) -> (BTreeSet<String>, BTreeSet<String>) {
    let row = |d: &depend::Dependence| {
        format!(
            "{}->{} {} {}",
            d.src.label,
            d.dst.label,
            if d.common > 0 {
                d.summary().to_string()
            } else {
                String::new()
            },
            d.status_tag()
        )
    };
    (
        analysis.live_flows().map(row).collect(),
        analysis.dead_flows().map(row).collect(),
    )
}

#[test]
fn figure2_fortran_parses_to_nine_statements() {
    let program = tiny::fortran::parse(tiny::corpus::CHOLSKY_F77).unwrap();
    let info = tiny::analyze(&program).unwrap();
    assert_eq!(info.stmts.len(), 9);
    // Declared arrays with the negative-lower-bound extents.
    assert!(program.arrays.contains_key("a"));
    assert!(program.arrays.contains_key("b"));
    assert!(program.arrays.contains_key("epss"));
    assert_eq!(program.arrays["a"].dims.len(), 3);
}

#[test]
fn fortran_and_tiny_cholsky_have_identical_statement_structure() {
    let f = tiny::analyze(&tiny::fortran::parse(tiny::corpus::CHOLSKY_F77).unwrap()).unwrap();
    let t = tiny::analyze(&tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap()).unwrap();
    assert_eq!(f.stmts.len(), t.stmts.len());
    for (a, b) in f.stmts.iter().zip(&t.stmts) {
        assert_eq!(name_key(&a.write.array), name_key(&b.write.array));
        assert_eq!(a.loops.len(), b.loops.len(), "statement {}", a.label);
        for (la, lb) in a.loops.iter().zip(&b.loops) {
            assert_eq!(name_key(&la.var), name_key(&lb.var));
            assert_eq!(la.lower, lb.lower, "stmt {} loop {}", a.label, la.var);
            assert_eq!(la.upper, lb.upper, "stmt {} loop {}", a.label, la.var);
        }
        assert_eq!(
            a.reads.len(),
            b.reads.len(),
            "statement {}: {:?} vs {:?}",
            a.label,
            a.reads,
            b.reads
        );
        assert_eq!(a.common_loops(b), a.loops.len(), "same nesting path");
    }
}

#[test]
fn fortran_cholsky_reproduces_the_same_figures() {
    let f_info =
        tiny::analyze(&tiny::fortran::parse(tiny::corpus::CHOLSKY_F77).unwrap()).unwrap();
    let t_info = tiny::analyze(&tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap()).unwrap();
    let f = analyze_program(&f_info, &Config::extended()).unwrap();
    let t = analyze_program(&t_info, &Config::extended()).unwrap();
    let (f_live, f_dead) = summarize(&f);
    let (t_live, t_dead) = summarize(&t);
    assert_eq!(f_live, t_live, "live flows must match the tiny translation");
    assert_eq!(f_dead, t_dead, "dead flows must match the tiny translation");
    assert_eq!(f_live.len(), 21, "Figure 3");
    assert_eq!(f_dead.len(), 14, "Figure 4");
}

#[test]
fn unnormalized_k_loop_matches_the_authors_hand_normalization() {
    // The Figure 2 header says: "1/28/92 W W PUGH ... NORMALIZED LOOP
    // THAT HAD STEP OF -1". Our frontend performs that normalization
    // automatically; the result must be equivalent to the hand-normalized
    // text — same statements, same dependences.
    let auto = tiny::analyze(
        &tiny::fortran::parse(tiny::corpus::CHOLSKY_SOLUTION_UNNORMALIZED_F77).unwrap(),
    )
    .unwrap();
    let hand = tiny::analyze(
        &tiny::fortran::parse(tiny::corpus::CHOLSKY_SOLUTION_NORMALIZED_F77).unwrap(),
    )
    .unwrap();
    assert_eq!(auto.stmts.len(), hand.stmts.len());

    let a = analyze_program(&auto, &Config::extended()).unwrap();
    let h = analyze_program(&hand, &Config::extended()).unwrap();
    let (a_live, a_dead) = summarize(&a);
    let (h_live, h_dead) = summarize(&h);
    assert_eq!(a_live, h_live, "live flows must coincide");
    assert_eq!(a_dead, h_dead, "dead flows must coincide");
}
