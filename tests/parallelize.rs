//! The parallelization decision engine, end to end: golden
//! `--parallelize` reports for CHOLSKY and GAUSS_JORDAN (at one and
//! eight threads — the report must not depend on the pool), plus two
//! properties over random programs on the in-repo shrinking framework:
//!
//! * kill analysis can only *add* parallelizable loops — a loop
//!   parallelizable with every dependence taken at face value stays
//!   parallelizable once dead ones are discounted;
//! * the pre-kill view is not a simulation: `KillView::PreKill`
//!   verdicts from an extended run equal the `PostKill` verdicts of a
//!   genuine run with the dead-marking analyses (kill + covering)
//!   switched off.

use harness::prop::{check, Config as PropConfig, Shrink};
use harness::Rng;

use depend::{analyze_program, decide_loops, Config, DepGraph, KillView};

fn corpus_info(name: &str) -> (tiny::Program, tiny::ProgramInfo) {
    let entry = tiny::corpus::by_name(name).unwrap();
    let program = tiny::Program::parse(entry.source).unwrap();
    let info = tiny::analyze(&program).unwrap();
    (program, info)
}

fn report(program: &tiny::Program, info: &tiny::ProgramInfo, threads: usize) -> String {
    let config = Config {
        threads,
        ..Config::extended()
    };
    let analysis = analyze_program(info, &config).unwrap();
    let graph = DepGraph::new(info, &analysis);
    depend::render_parallelize_report(program, &graph)
}

#[test]
fn cholsky_report_matches_the_golden_at_one_and_eight_threads() {
    let golden = include_str!("golden/cholsky_parallelize.txt");
    let (program, info) = corpus_info("cholsky");
    for threads in [1, 8] {
        assert_eq!(
            report(&program, &info, threads),
            golden,
            "threads={threads} diverged from the golden"
        );
    }
}

#[test]
fn gauss_jordan_report_matches_the_golden_at_one_and_eight_threads() {
    let golden = include_str!("golden/gauss_jordan_parallelize.txt");
    let (program, info) = corpus_info("gauss_jordan");
    for threads in [1, 8] {
        assert_eq!(
            report(&program, &info, threads),
            golden,
            "threads={threads} diverged from the golden"
        );
    }
}

/// The same compact program description `tests/pipeline_fuzz.rs` uses:
/// a 1–2 deep nest of 2–4 affine assignments over three arrays, with an
/// optional trailing read loop. Always parses and analyzes.
#[derive(Debug, Clone)]
struct ProgSpec {
    two_deep: bool,
    stmts: Vec<StmtSpec>,
    trailing_read: bool,
}

#[derive(Debug, Clone)]
struct StmtSpec {
    array: usize, // 0..3
    write_sub: (i64, i64, i64),
    read_array: usize,
    read_sub: (i64, i64, i64),
}

impl Shrink for StmtSpec {
    fn shrink(&self) -> Vec<Self> {
        let tuple = (self.array, self.write_sub, self.read_array, self.read_sub);
        tuple
            .shrink()
            .into_iter()
            .map(|(array, write_sub, read_array, read_sub)| StmtSpec {
                array,
                write_sub,
                read_array,
                read_sub,
            })
            .collect()
    }
}

impl Shrink for ProgSpec {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.two_deep {
            out.push(ProgSpec {
                two_deep: false,
                ..self.clone()
            });
        }
        if self.trailing_read {
            out.push(ProgSpec {
                trailing_read: false,
                ..self.clone()
            });
        }
        out.extend(
            harness::prop::shrink_vec(&self.stmts, StmtSpec::shrink, 1)
                .into_iter()
                .map(|stmts| ProgSpec {
                    stmts,
                    ..self.clone()
                }),
        );
        out
    }
}

fn gen_sub(rng: &mut Rng) -> (i64, i64, i64) {
    (
        rng.gen_range_i64(0..=2),
        rng.gen_range_i64(0..=2),
        rng.gen_range_i64(-2..=2),
    )
}

fn gen_spec(rng: &mut Rng) -> ProgSpec {
    let n = rng.gen_range_usize(2..=4);
    ProgSpec {
        two_deep: rng.flip(),
        stmts: (0..n)
            .map(|_| StmtSpec {
                array: rng.gen_range_usize(0..3),
                write_sub: gen_sub(rng),
                read_array: rng.gen_range_usize(0..3),
                read_sub: gen_sub(rng),
            })
            .collect(),
        trailing_read: rng.flip(),
    }
}

fn render(spec: &ProgSpec) -> String {
    let arrays = ["aa", "bb", "cc"];
    let sub = |(ci, cj, k): (i64, i64, i64), two: bool| {
        let mut s = String::new();
        s.push_str(&format!("{ci}*i"));
        if two {
            s.push_str(&format!(" + {cj}*j"));
        }
        s.push_str(&format!(" + {k}"));
        s
    };
    let mut out = String::from("sym n;\nfor i := 1 to n do\n");
    if spec.two_deep {
        out.push_str("for j := 1 to n do\n");
    }
    for st in &spec.stmts {
        out.push_str(&format!(
            "  {}({}) := {}({}) + 1;\n",
            arrays[st.array % 3],
            sub(st.write_sub, spec.two_deep),
            arrays[st.read_array % 3],
            sub(st.read_sub, spec.two_deep),
        ));
    }
    if spec.two_deep {
        out.push_str("endfor\n");
    }
    out.push_str("endfor\n");
    if spec.trailing_read {
        out.push_str("for i := 1 to n do\n  x := aa(i);\nendfor\n");
    }
    out
}

/// Kill analysis only adds parallelizable loops, and the pre-kill view
/// is faithful to a real no-dead-marking run (see the module docs).
fn prop_kill_only_unlocks(spec: &ProgSpec) -> Result<(), String> {
    let src = render(spec);
    let program = tiny::Program::parse(&src)
        .map_err(|e| format!("generated program failed to parse: {e}\n{src}"))?;
    let info =
        tiny::analyze(&program).map_err(|e| format!("analysis failed: {e}\n{src}"))?;

    let ext_cfg = Config {
        budget: 60_000,
        ..Config::extended()
    };
    // The pre-kill baseline as an actual configuration: refinement still
    // on, but neither of the dead-marking analyses.
    let nokill_cfg = Config {
        kill: false,
        cover: false,
        ..ext_cfg.clone()
    };
    let ext = analyze_program(&info, &ext_cfg)
        .map_err(|e| format!("extended analysis failed: {e}\n{src}"))?;
    let nokill = analyze_program(&info, &nokill_cfg)
        .map_err(|e| format!("no-kill analysis failed: {e}\n{src}"))?;

    let ext_graph = DepGraph::new(&info, &ext);
    let nokill_graph = DepGraph::new(&info, &nokill);
    let decisions = decide_loops(&ext_graph);

    for d in &decisions {
        // Monotonicity: discounting dead dependences never takes a
        // parallelizable loop away.
        if d.pre.parallelizable() && !d.post.parallelizable() {
            return Err(format!(
                "kill analysis took away loop {} at {:?}: pre {:?} vs post {:?}\n{src}",
                d.l.var, d.l.path, d.pre, d.post
            ));
        }
        // Faithfulness: the PreKill view of the extended run must equal
        // the PostKill verdict of the genuine kill/cover-off run.
        let real = nokill_graph.loop_verdict(&d.l, KillView::PostKill);
        if real != d.pre {
            return Err(format!(
                "PreKill view diverged from the kill/cover-off run for loop {} at {:?}:\n\
                 view {:?}\nrun  {:?}\n{src}",
                d.l.var, d.l.path, d.pre, real
            ));
        }
    }
    Ok(())
}

#[test]
fn kill_analysis_only_adds_parallelizable_loops() {
    check(&PropConfig::with_cases(64), gen_spec, prop_kill_only_unlocks);
}

/// The corpus programs designed to showcase the delta stay unlocked:
/// each has exactly one loop that is parallelizable only post-kill.
#[test]
fn showcase_programs_have_a_newly_parallelizable_loop() {
    for name in ["example2", "pivot_reset", "stepped_reset"] {
        let (_, info) = corpus_info(name);
        let analysis = analyze_program(&info, &Config::extended()).unwrap();
        let graph = DepGraph::new(&info, &analysis);
        let newly: Vec<_> = decide_loops(&graph)
            .into_iter()
            .filter(|d| d.newly_parallelizable())
            .collect();
        assert_eq!(
            newly.len(),
            1,
            "{name}: expected exactly one newly-parallelizable loop, got {:?}",
            newly.iter().map(|d| d.l.var.clone()).collect::<Vec<_>>()
        );
    }
}
