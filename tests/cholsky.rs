//! Integration test: the CHOLSKY analysis reproduces Figures 3 and 4 of
//! the paper — the same live/dead partition, the same direction/distance
//! vectors, and the same status tags.

use std::collections::BTreeSet;

use depend::{analyze_program, Config, DeadReason};

/// (paper label of FROM, paper label of TO, read index ignored) -> (dir, tag)
type Row = (usize, usize, &'static str, &'static str);

/// Figure 3 rows: (from, to, dir/dist, status). Read positions are
/// identified by the access text in the full table test below; here the
/// (from, to, dir) triple is unique per row except where noted.
const FIGURE3: &[Row] = &[
    (3, 3, "(0,0,1,0)", "[ r]"),
    (3, 2, "(0,0)", ""),
    (2, 3, "(0,+)", ""),  // A(L,I+JJ,J)
    (2, 3, "(+,*)", ""),  // A(L,JJ,I+J)
    (2, 5, "(0)", "[C ]"),
    (2, 7, "", "[C ]"),
    (2, 6, "", "[C ]"),
    (4, 1, "(0)", "[Cr]"),
    (5, 5, "(0,1,0)", "[ r]"),
    (5, 1, "(0)", ""),
    (1, 2, "(+)", ""),
    (1, 8, "", "[C ]"),
    (1, 9, "", "[C ]"),
    (8, 7, "(0,0)", "[C ]"),
    (8, 9, "(0)", "[C ]"),
    (8, 6, "(0)", "[C ]"),
    (7, 8, "(0,1)", "[ r]"),
    (7, 7, "(0,1,-1,0)", "[ r]"),
    (9, 6, "(0,0)", "[C ]"),
    (6, 9, "(0,1)", "[ r]"),
    (6, 6, "(0,1,-1,0)", "[ r]"),
];

/// Figure 4 rows. Distance vectors marked `*` in the paper may be tighter
/// here (`0+` instead of `*`), so only from/to/tag are matched for those.
const FIGURE4: &[(usize, usize, &str)] = &[
    (3, 3, "[ k]"), // A(L,I+JJ,J)
    (3, 3, "[ k]"), // A(L,JJ,I+J)
    (3, 5, "[ k]"),
    (3, 7, "[ k]"),
    (3, 6, "[ k]"),
    (5, 2, "[ k]"),
    (5, 8, "[ k]"),
    (5, 9, "[ k]"),
    (8, 6, "[ c]"),
    (7, 7, "[kr]"),
    (7, 9, "[ k]"),
    (7, 6, "[ c]"), // B(I,L,N-K)
    (7, 6, "[ k]"), // B(I,L,N-K-JJ)
    (6, 6, "[kr]"),
];

fn paper_label(internal: usize) -> usize {
    tiny::corpus::CHOLSKY_PAPER_LABELS[internal]
}

#[test]
fn cholsky_reproduces_figure_3_and_4() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let analysis = analyze_program(&info, &Config::extended()).unwrap();

    // --- Figure 3: the live rows -------------------------------------
    let live: Vec<(usize, usize, String, String)> = analysis
        .live_flows()
        .map(|d| {
            (
                paper_label(d.src.label),
                paper_label(d.dst.label),
                if d.common > 0 {
                    d.summary().to_string()
                } else {
                    String::new()
                },
                d.status_tag(),
            )
        })
        .collect();
    assert_eq!(live.len(), FIGURE3.len(), "21 live flow dependences");
    for &(from, to, dir, tag) in FIGURE3 {
        assert!(
            live.iter()
                .any(|(f, t, d, s)| *f == from && *t == to && d == dir && s == tag),
            "missing live row {from} -> {to} {dir} {tag}; have {live:#?}"
        );
    }

    // --- Figure 4: the dead rows -------------------------------------
    let dead: Vec<(usize, usize, String)> = analysis
        .dead_flows()
        .map(|d| {
            (
                paper_label(d.src.label),
                paper_label(d.dst.label),
                d.status_tag(),
            )
        })
        .collect();
    assert_eq!(dead.len(), FIGURE4.len(), "14 dead flow dependences");
    // Match as a multiset of (from, to, tag).
    let mut want: Vec<(usize, usize, String)> = FIGURE4
        .iter()
        .map(|&(f, t, s)| (f, t, s.to_string()))
        .collect();
    let mut got = dead.clone();
    want.sort();
    got.sort();
    assert_eq!(got, want, "dead rows with tags must match Figure 4");
}

#[test]
fn cholsky_standard_analysis_reports_everything_live() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let analysis = analyze_program(&info, &Config::standard()).unwrap();
    assert_eq!(
        analysis.dead_flows().count(),
        0,
        "standard analysis cannot eliminate false dependences"
    );
    assert_eq!(analysis.flows.len(), 35, "21 live + 14 would-be-dead");
    assert!(analysis.flows.iter().all(|d| !d.refined && !d.covering));
}

#[test]
fn cholsky_output_and_anti_dependences_are_computed() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let analysis = analyze_program(&info, &Config::extended()).unwrap();
    // The paper: "our changes have no effect on the output or anti
    // dependences computed". Spot-check presence and self-consistency.
    assert!(!analysis.outputs.is_empty());
    assert!(!analysis.antis.is_empty());
    let std = analyze_program(&info, &Config::standard()).unwrap();
    assert_eq!(std.outputs.len(), analysis.outputs.len());
    assert_eq!(std.antis.len(), analysis.antis.len());
}

#[test]
fn cholsky_dead_reasons_split_into_killed_and_covered() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let analysis = analyze_program(&info, &Config::extended()).unwrap();
    let killed = analysis
        .dead_flows()
        .filter(|d| d.dead == Some(DeadReason::Killed))
        .count();
    let covered = analysis
        .dead_flows()
        .filter(|d| d.dead == Some(DeadReason::Covered))
        .count();
    assert_eq!(killed, 12, "12 [k]/[kr] rows in Figure 4");
    assert_eq!(covered, 2, "2 [c] rows in Figure 4");
}

#[test]
fn cholsky_covering_set_matches_figure_3() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let analysis = analyze_program(&info, &Config::extended()).unwrap();
    let covers: BTreeSet<(usize, usize)> = analysis
        .live_flows()
        .filter(|d| d.covering)
        .map(|d| (paper_label(d.src.label), paper_label(d.dst.label)))
        .collect();
    let expected: BTreeSet<(usize, usize)> = [
        (2, 5),
        (2, 7),
        (2, 6),
        (4, 1),
        (1, 8),
        (1, 9),
        (8, 7),
        (8, 9),
        (8, 6),
        (9, 6),
    ]
    .into_iter()
    .collect();
    assert_eq!(covers, expected);
}

#[test]
fn cholsky_epss_is_privatizable_thanks_to_kill_analysis() {
    // EPSS is a scratch array rewritten every J iteration (statement 4 in
    // paper labels) and read back within the same iteration (statement 1).
    // Figure 3 reports the flow refined to (0) — loop independent — so
    // EPSS carries nothing across J iterations and privatizes. Standard
    // analysis keeps the stale carried flow and blocks exactly the
    // transformation the paper's introduction motivates.
    use depend::{program_loops, Legality};
    use tiny::ast::name_key;

    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let loops = program_loops(&info);
    let j_loop = loops
        .iter()
        .find(|l| name_key(&l.var) == "j" && l.depth == 1)
        .expect("the decomposition J loop");

    let ext = analyze_program(&info, &Config::extended()).unwrap();
    let ext_legality = Legality::new(&info, &ext);
    assert!(
        ext_legality.privatizable("epss", j_loop),
        "extended analysis: EPSS has no live carried flow"
    );

    let std = analyze_program(&info, &Config::standard()).unwrap();
    let std_legality = Legality::new(&info, &std);
    assert!(
        !std_legality.privatizable("epss", j_loop),
        "standard analysis: the false carried flow on EPSS blocks privatization"
    );
}
