//! The persistent solver cache is *transparent*: for every corpus
//! program, a cold run that populates a cache file, a warm run served
//! from it, and a `memo_cache: false` run must produce byte-identical
//! reports — and a corrupt, truncated, or version-stale cache file must
//! be ignored (the run is simply cold) rather than ever changing a
//! result.

use std::path::PathBuf;

use depend::{analyze_program, Config, ReportOptions};

fn temp_cache(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "omega_persist_test_{}_{}.cache",
        tag,
        std::process::id()
    ))
}

fn render(info: &tiny::ProgramInfo, config: &Config) -> (String, String, String) {
    let analysis = analyze_program(info, config).unwrap();
    let ropts = ReportOptions::default();
    let graph = depend::DepGraph::new(info, &analysis);
    (
        depend::live_flow_table(&graph, &ropts),
        depend::dead_flow_table(&graph, &ropts),
        depend::report::to_json(&graph),
    )
}

#[test]
fn cold_warm_and_uncached_reports_are_identical_across_the_corpus() {
    let path = temp_cache("corpus");
    for entry in tiny::corpus::all() {
        let program = tiny::Program::parse(entry.source).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let cached = Config {
            cache_file: Some(path.clone()),
            ..Config::extended()
        };
        let uncached = Config {
            memo_cache: false,
            ..Config::extended()
        };
        let _ = std::fs::remove_file(&path);
        let cold = render(&info, &cached);
        let warm = render(&info, &cached);
        assert_eq!(cold, warm, "{}: warm report diverged", entry.name);
        assert_eq!(
            cold,
            render(&info, &uncached),
            "{}: uncached report diverged",
            entry.name
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn warm_run_is_served_entirely_from_the_cache_file() {
    let path = temp_cache("warm");
    let _ = std::fs::remove_file(&path);
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let config = Config {
        cache_file: Some(path.clone()),
        ..Config::extended()
    };
    let cold = analyze_program(&info, &config).unwrap();
    assert!(path.exists(), "cold run did not write the cache file");
    let warm = analyze_program(&info, &config).unwrap();
    let _ = std::fs::remove_file(&path);
    let (cc, wc) = (&cold.stats.cache, &warm.stats.cache);
    assert!(cc.misses > 0, "cold run unexpectedly warm");
    assert_eq!(wc.hits, wc.lookups(), "warm run missed the cache file");
    assert_eq!(wc.inserts, 0, "warm run inserted into a primed cache");
}

/// FNV-1a 64 — mirrors the checksum in the cache format so these tests
/// can verify a file is complete and untorn from the raw bytes alone.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Asserts `bytes` is a complete cache file: header, checksum line at
/// the end, and the checksum validating every byte before it.
fn assert_untorn(bytes: &[u8], context: &str) {
    let text = std::str::from_utf8(bytes).unwrap_or_else(|_| panic!("{context}: not UTF-8"));
    assert!(
        text.starts_with("omega-solver-cache "),
        "{context}: missing header: {:?}",
        text.get(..40)
    );
    let c_start = text.rfind("\nC ").map(|p| p + 1).unwrap_or_else(|| {
        panic!("{context}: no checksum line");
    });
    let stored = u64::from_str_radix(text[c_start..].trim_end().trim_start_matches("C "), 16)
        .unwrap_or_else(|e| panic!("{context}: bad checksum line: {e}"));
    assert_eq!(
        fnv64(text[..c_start].as_bytes()),
        stored,
        "{context}: checksum mismatch — torn write"
    );
}

#[test]
fn a_torn_file_is_ignored_and_the_next_save_recovers() {
    // Regression: `save_to` used to write the file in place, so a crash
    // (or a concurrent writer) could leave a torn file. The torn file
    // must never panic the loader, must degrade to a cold run, and must
    // not prevent the analysis from re-writing a valid file afterwards.
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let baseline = render(&info, &Config::extended());

    let path = temp_cache("torn");
    let _ = std::fs::remove_file(&path);
    let config = Config {
        cache_file: Some(path.clone()),
        ..Config::extended()
    };
    analyze_program(&info, &config).unwrap();
    let good = std::fs::read(&path).unwrap();
    assert_untorn(&good, "freshly saved");

    // Tear the file mid-record (not on a line boundary).
    let cut = good.len() * 2 / 3 + 3;
    std::fs::write(&path, &good[..cut]).unwrap();

    // Cold-but-correct run over the torn file, which also re-saves.
    let report = render(&info, &config);
    assert_eq!(report, baseline, "torn cache changed the report");
    let rewritten = std::fs::read(&path).unwrap();
    assert_untorn(&rewritten, "re-saved over torn");

    // And the re-saved file serves a fully warm run.
    let warm = analyze_program(&info, &config).unwrap();
    assert_eq!(
        warm.stats.cache.hits,
        warm.stats.cache.lookups(),
        "re-saved cache did not serve a warm run"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn concurrent_saves_never_produce_a_torn_file() {
    // Two writers hammering one path (server shutdown racing a one-shot
    // run) while a reader polls: every observed file state must be a
    // complete cache, and no temporary droppings may remain.
    let program = tiny::Program::parse(tiny::corpus::EXAMPLE_2).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let path = temp_cache("race");
    let _ = std::fs::remove_file(&path);
    let config = Config {
        cache_file: Some(path.clone()),
        ..Config::extended()
    };
    analyze_program(&info, &config).unwrap();
    let cache = omega::SolverCache::load_from(&path);

    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                for _ in 0..40 {
                    cache.save_to(&path).expect("save failed");
                }
            });
        }
        s.spawn(|| {
            for _ in 0..120 {
                let bytes = std::fs::read(&path).expect("cache file vanished mid-race");
                assert_untorn(&bytes, "concurrent read");
            }
        });
    });

    let dir = path.parent().unwrap();
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let droppings: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(&format!(".{name}.tmp.")))
        .collect();
    assert!(droppings.is_empty(), "temp files left behind: {droppings:?}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn save_to_an_unwritable_path_errors_cleanly() {
    let cache = omega::SolverCache::new();
    let err = cache.save_to(std::path::Path::new("/nonexistent-dir-for-sure/x.cache"));
    assert!(err.is_err(), "save into a missing directory must error, not panic");
}

#[test]
fn a_failed_cache_save_is_surfaced_but_does_not_fail_the_analysis() {
    // Regression: `analyze_program` used to swallow a failed cache save
    // with `let _ = ...`, so users lost their warm starts silently. The
    // analysis must still succeed with an unchanged report, but the
    // failure must be surfaced in `Stats::cache_save_failed`.
    //
    // These tests may run as root, where read-only directory permissions
    // don't block writes — so the unwritable path here is one whose
    // parent is a regular file (NotADirectory fails for root too).
    let blocker = temp_cache("save_blocker");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let bad_path = blocker.join("cache.bin");

    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let baseline = render(&info, &Config::extended());

    let config = Config {
        cache_file: Some(bad_path),
        ..Config::extended()
    };
    let analysis = analyze_program(&info, &config).unwrap();
    assert!(
        analysis.stats.cache_save_failed,
        "failed cache save was swallowed silently"
    );
    let ropts = ReportOptions::default();
    let graph = depend::DepGraph::new(&info, &analysis);
    let report = (
        depend::live_flow_table(&graph, &ropts),
        depend::dead_flow_table(&graph, &ropts),
        depend::report::to_json(&graph),
    );
    assert_eq!(report, baseline, "failed save changed the report");

    // A save that works leaves the flag clear.
    let good = temp_cache("save_ok");
    let _ = std::fs::remove_file(&good);
    let config = Config {
        cache_file: Some(good.clone()),
        ..Config::extended()
    };
    let analysis = analyze_program(&info, &config).unwrap();
    assert!(!analysis.stats.cache_save_failed);
    let _ = std::fs::remove_file(&good);
    let _ = std::fs::remove_file(&blocker);

    // The corpus driver surfaces the same failure on every analysis.
    let blocker = temp_cache("corpus_save_blocker");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let config = Config {
        threads: 2,
        cache_file: Some(blocker.join("cache.bin")),
        ..Config::extended()
    };
    let program2 = tiny::Program::parse(tiny::corpus::EXAMPLE_2).unwrap();
    let infos = vec![info, tiny::analyze(&program2).unwrap()];
    let analyses = depend::analyze_corpus(&infos, &config).unwrap();
    assert!(
        analyses.iter().all(|a| a.stats.cache_save_failed),
        "corpus driver swallowed the failed save"
    );
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn damaged_cache_files_fall_back_to_a_cold_run() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let baseline = render(&info, &Config::extended());

    // Prime a good file once so "truncated" below is realistic.
    let good = temp_cache("good");
    let _ = std::fs::remove_file(&good);
    let config = Config {
        cache_file: Some(good.clone()),
        ..Config::extended()
    };
    analyze_program(&info, &config).unwrap();
    let bytes = std::fs::read(&good).unwrap();
    let _ = std::fs::remove_file(&good);

    let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("garbage", b"not a cache file at all\n\x00\xff".to_vec()),
        ("empty", Vec::new()),
        ("truncated", bytes[..bytes.len() / 2].to_vec()),
        ("header_only", bytes[..header_end].to_vec()),
        (
            "stale_version",
            {
                let mut v = b"omega-solver-cache format=999 solver=999\n".to_vec();
                v.extend_from_slice(&bytes[header_end..]);
                v
            },
        ),
    ];
    for (tag, contents) in cases {
        let path = temp_cache(tag);
        std::fs::write(&path, &contents).unwrap();
        let config = Config {
            cache_file: Some(path.clone()),
            ..Config::extended()
        };
        let analysis = analyze_program(&info, &config).unwrap();
        let ropts = ReportOptions::default();
        let graph = depend::DepGraph::new(&info, &analysis);
        let report = (
            depend::live_flow_table(&graph, &ropts),
            depend::dead_flow_table(&graph, &ropts),
            depend::report::to_json(&graph),
        );
        let _ = std::fs::remove_file(&path);
        assert_eq!(report, baseline, "{tag}: report changed under a damaged cache");
        // A rejected file means a genuinely cold run: nothing to hit on
        // the very first lookup, and the solver does real work.
        assert!(
            analysis.stats.cache.misses > 0,
            "{tag}: damaged cache file was not ignored"
        );
    }
}
