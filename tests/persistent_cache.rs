//! The persistent solver cache is *transparent*: for every corpus
//! program, a cold run that populates a cache file, a warm run served
//! from it, and a `memo_cache: false` run must produce byte-identical
//! reports — and a corrupt, truncated, or version-stale cache file must
//! be ignored (the run is simply cold) rather than ever changing a
//! result.

use std::path::PathBuf;

use depend::{analyze_program, Config, ReportOptions};

fn temp_cache(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "omega_persist_test_{}_{}.cache",
        tag,
        std::process::id()
    ))
}

fn render(info: &tiny::ProgramInfo, config: &Config) -> (String, String, String) {
    let analysis = analyze_program(info, config).unwrap();
    let ropts = ReportOptions::default();
    (
        depend::live_flow_table(info, &analysis, &ropts),
        depend::dead_flow_table(info, &analysis, &ropts),
        depend::report::to_json(info, &analysis),
    )
}

#[test]
fn cold_warm_and_uncached_reports_are_identical_across_the_corpus() {
    let path = temp_cache("corpus");
    for entry in tiny::corpus::all() {
        let program = tiny::Program::parse(entry.source).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let cached = Config {
            cache_file: Some(path.clone()),
            ..Config::extended()
        };
        let uncached = Config {
            memo_cache: false,
            ..Config::extended()
        };
        let _ = std::fs::remove_file(&path);
        let cold = render(&info, &cached);
        let warm = render(&info, &cached);
        assert_eq!(cold, warm, "{}: warm report diverged", entry.name);
        assert_eq!(
            cold,
            render(&info, &uncached),
            "{}: uncached report diverged",
            entry.name
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn warm_run_is_served_entirely_from_the_cache_file() {
    let path = temp_cache("warm");
    let _ = std::fs::remove_file(&path);
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let config = Config {
        cache_file: Some(path.clone()),
        ..Config::extended()
    };
    let cold = analyze_program(&info, &config).unwrap();
    assert!(path.exists(), "cold run did not write the cache file");
    let warm = analyze_program(&info, &config).unwrap();
    let _ = std::fs::remove_file(&path);
    let (cc, wc) = (&cold.stats.cache, &warm.stats.cache);
    assert!(cc.misses > 0, "cold run unexpectedly warm");
    assert_eq!(wc.hits, wc.lookups(), "warm run missed the cache file");
    assert_eq!(wc.inserts, 0, "warm run inserted into a primed cache");
}

#[test]
fn damaged_cache_files_fall_back_to_a_cold_run() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let baseline = render(&info, &Config::extended());

    // Prime a good file once so "truncated" below is realistic.
    let good = temp_cache("good");
    let _ = std::fs::remove_file(&good);
    let config = Config {
        cache_file: Some(good.clone()),
        ..Config::extended()
    };
    analyze_program(&info, &config).unwrap();
    let bytes = std::fs::read(&good).unwrap();
    let _ = std::fs::remove_file(&good);

    let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("garbage", b"not a cache file at all\n\x00\xff".to_vec()),
        ("empty", Vec::new()),
        ("truncated", bytes[..bytes.len() / 2].to_vec()),
        ("header_only", bytes[..header_end].to_vec()),
        (
            "stale_version",
            {
                let mut v = b"omega-solver-cache format=999 solver=999\n".to_vec();
                v.extend_from_slice(&bytes[header_end..]);
                v
            },
        ),
    ];
    for (tag, contents) in cases {
        let path = temp_cache(tag);
        std::fs::write(&path, &contents).unwrap();
        let config = Config {
            cache_file: Some(path.clone()),
            ..Config::extended()
        };
        let analysis = analyze_program(&info, &config).unwrap();
        let ropts = ReportOptions::default();
        let report = (
            depend::live_flow_table(&info, &analysis, &ropts),
            depend::dead_flow_table(&info, &analysis, &ropts),
            depend::report::to_json(&info, &analysis),
        );
        let _ = std::fs::remove_file(&path);
        assert_eq!(report, baseline, "{tag}: report changed under a damaged cache");
        // A rejected file means a genuinely cold run: nothing to hit on
        // the very first lookup, and the solver does real work.
        assert!(
            analysis.stats.cache.misses > 0,
            "{tag}: damaged cache file was not ignored"
        );
    }
}
