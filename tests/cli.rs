//! End-to-end tests of the `tinydep` command-line driver.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn tinydep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tinydep"))
}

#[test]
fn analyzes_a_corpus_program() {
    let out = tinydep()
        .arg("corpus:example3")
        .output()
        .expect("tinydep runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("(0,1)"), "refined vector expected:\n{stdout}");
    assert!(stdout.contains("[ r]"), "{stdout}");
}

#[test]
fn standard_mode_reports_unrefined() {
    let out = tinydep()
        .args(["--standard", "corpus:example3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("(0+,1)"), "{stdout}");
    assert!(!stdout.contains("dead flow"), "{stdout}");
}

#[test]
fn reads_from_stdin() {
    let mut child = tinydep()
        .arg("-")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"sym n; for i := 2 to n do a(i) := a(i-1); endfor")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("A(I)"), "{stdout}");
    assert!(stdout.contains("(1)"), "{stdout}");
}

#[test]
fn parallel_report() {
    let out = tinydep()
        .args(["--parallel", "corpus:matmul"])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("loop parallelism"), "{stdout}");
    assert!(stdout.contains("PARALLEL"), "{stdout}");
    assert!(stdout.contains("sequential"), "{stdout}");
}

#[test]
fn parse_errors_are_reported_with_position() {
    let mut child = tinydep()
        .arg("-")
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"for i := 1 to n do a(i) := 0;")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("endfor"), "{stderr}");
}

#[test]
fn unknown_corpus_program_fails_cleanly() {
    let out = tinydep().arg("corpus:nope").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("no corpus program"), "{stderr}");
}

#[test]
fn list_corpus() {
    let out = tinydep().arg("--list-corpus").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.lines().count() >= 25);
    assert!(stdout.contains("cholsky"), "{stdout}");
}

#[test]
fn all_flag_prints_storage_dependences() {
    let out = tinydep()
        .args(["--all", "corpus:seidel"])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("anti dependences"), "{stdout}");
    assert!(stdout.contains("output dependences"), "{stdout}");
}

#[test]
fn fortran_flag_accepts_figure_2() {
    let mut child = tinydep()
        .args(["--fortran", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(tiny::corpus::CHOLSKY_F77.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("dead flow dependences"), "{stdout}");
    assert!(stdout.contains("EPSS(L)"), "{stdout}");
}

#[test]
fn dot_output_is_valid_digraph() {
    let out = tinydep().args(["--dot", "corpus:example2"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("digraph dependences {"), "{stdout}");
    assert!(stdout.contains("dashed"), "dead edges shown:\n{stdout}");
    assert!(stdout.trim_end().ends_with('}'), "{stdout}");
}

#[test]
fn signs_prints_direction_vector_sets() {
    let out = tinydep().args(["--signs", "corpus:example6"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("{(+,+)}"), "coupled distances:\n{stdout}");
}

#[test]
fn json_output_parses_mentally() {
    let out = tinydep().args(["--json", "corpus:example1"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"flows\""), "{stdout}");
    assert!(stdout.contains("\"status\": \"dead\""), "{stdout}");
    assert!(stdout.contains("\"srcAccess\": \"a(n)\""), "{stdout}");
}
