//! End-to-end fuzzing: random small loop programs run through the whole
//! pipeline (parse → analyze → extended dependence analysis), checking
//! the soundness invariants that must hold for *any* program:
//!
//! * no panics, no solver errors within budget;
//! * the extended analysis only removes dependences or tightens vectors;
//! * every dead flow has a live killer/coverer writing the same array;
//! * value sources only shrink.
//!
//! Runs on the in-repo `harness` property framework.

use harness::prop::{check, check_value, Config, Shrink};
use harness::{prop_assert, prop_assert_eq, Rng};

use depend::{analyze_program, Config as AnalysisConfig};
use tiny::ast::name_key;

/// A compact program description that always produces a valid, analyzable
/// program: a nest of 1–2 loops containing 2–4 assignments over a couple
/// of arrays with affine subscripts `c1*i + c2*j + k`.
#[derive(Debug, Clone)]
struct ProgSpec {
    two_deep: bool,
    stmts: Vec<StmtSpec>,
    trailing_read: bool,
}

#[derive(Debug, Clone)]
struct StmtSpec {
    array: usize,            // 0..3
    write_sub: (i64, i64, i64),
    read_array: usize,
    read_sub: (i64, i64, i64),
}

impl Shrink for StmtSpec {
    fn shrink(&self) -> Vec<Self> {
        let tuple = (self.array, self.write_sub, self.read_array, self.read_sub);
        tuple
            .shrink()
            .into_iter()
            .map(|(array, write_sub, read_array, read_sub)| StmtSpec {
                array,
                write_sub,
                read_array,
                read_sub,
            })
            .collect()
    }
}

impl Shrink for ProgSpec {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.two_deep {
            out.push(ProgSpec {
                two_deep: false,
                ..self.clone()
            });
        }
        if self.trailing_read {
            out.push(ProgSpec {
                trailing_read: false,
                ..self.clone()
            });
        }
        out.extend(
            harness::prop::shrink_vec(&self.stmts, StmtSpec::shrink, 1)
                .into_iter()
                .map(|stmts| ProgSpec {
                    stmts,
                    ..self.clone()
                }),
        );
        out
    }
}

fn gen_sub(rng: &mut Rng) -> (i64, i64, i64) {
    (
        rng.gen_range_i64(0..=2),
        rng.gen_range_i64(0..=2),
        rng.gen_range_i64(-2..=2),
    )
}

fn gen_spec(rng: &mut Rng) -> ProgSpec {
    let n = rng.gen_range_usize(2..=4);
    ProgSpec {
        two_deep: rng.flip(),
        stmts: (0..n)
            .map(|_| StmtSpec {
                array: rng.gen_range_usize(0..3),
                write_sub: gen_sub(rng),
                read_array: rng.gen_range_usize(0..3),
                read_sub: gen_sub(rng),
            })
            .collect(),
        trailing_read: rng.flip(),
    }
}

fn render(spec: &ProgSpec) -> String {
    let arrays = ["aa", "bb", "cc"];
    let sub = |(ci, cj, k): (i64, i64, i64), two: bool| {
        let mut s = String::new();
        s.push_str(&format!("{ci}*i"));
        if two {
            s.push_str(&format!(" + {cj}*j"));
        }
        s.push_str(&format!(" + {k}"));
        // Guard against the all-zero subscript colliding everything in
        // trivial ways (that's fine too, but keep variety).
        s
    };
    let mut out = String::from("sym n;\nfor i := 1 to n do\n");
    if spec.two_deep {
        out.push_str("for j := 1 to n do\n");
    }
    for st in &spec.stmts {
        out.push_str(&format!(
            "  {}({}) := {}({}) + 1;\n",
            arrays[st.array % 3],
            sub(st.write_sub, spec.two_deep),
            arrays[st.read_array % 3],
            sub(st.read_sub, spec.two_deep),
        ));
    }
    if spec.two_deep {
        out.push_str("endfor\n");
    }
    out.push_str("endfor\n");
    if spec.trailing_read {
        out.push_str("for i := 1 to n do\n  x := aa(i);\nendfor\n");
    }
    out
}

/// The pipeline soundness property (see the module docs).
fn prop_pipeline_invariants(spec: &ProgSpec) -> Result<(), String> {
    let src = render(spec);
    let program = tiny::Program::parse(&src)
        .map_err(|e| format!("generated program failed to parse: {e}\n{src}"))?;
    let info =
        tiny::analyze(&program).map_err(|e| format!("analysis failed: {e}\n{src}"))?;

    // A deliberately modest per-query budget: exhaustion must degrade
    // conservatively, never error (found by this very fuzzer).
    let std_cfg = AnalysisConfig {
        budget: 60_000,
        ..AnalysisConfig::standard()
    };
    let ext_cfg = AnalysisConfig {
        budget: 60_000,
        ..AnalysisConfig::extended()
    };
    let std = analyze_program(&info, &std_cfg)
        .map_err(|e| format!("standard analysis failed: {e}\n{src}"))?;
    let ext = analyze_program(&info, &ext_cfg)
        .map_err(|e| format!("extended analysis failed: {e}\n{src}"))?;

    // Same dependence pairs.
    prop_assert_eq!(std.flows.len(), ext.flows.len(), "\n{}", &src);
    prop_assert_eq!(std.outputs.len(), ext.outputs.len(), "\n{}", &src);
    prop_assert_eq!(std.antis.len(), ext.antis.len(), "\n{}", &src);
    prop_assert_eq!(std.dead_flows().count(), 0, "\n{}", &src);

    for (s, e) in std.flows.iter().zip(&ext.flows) {
        prop_assert_eq!((s.src, s.dst), (e.src, e.dst));
        if e.is_live() {
            // Refined vectors are entrywise within the unrefined ones.
            let su = s.summary();
            let eu = e.summary();
            for (a, b) in su.0.iter().zip(&eu.0) {
                let lo_ok = match (a.lo, b.lo) {
                    (None, _) => true,
                    (Some(x), Some(y)) => y >= x,
                    (Some(_), None) => false,
                };
                let hi_ok = match (a.hi, b.hi) {
                    (None, _) => true,
                    (Some(x), Some(y)) => y <= x,
                    (Some(_), None) => false,
                };
                prop_assert!(lo_ok && hi_ok, "{} within {}\n{}", eu, su, &src);
            }
        } else {
            // A dead flow needs a plausible killer: another statement
            // writing the same array.
            let victim_array = name_key(&info.stmt(e.src.label).write.array);
            let has_killer = info
                .stmts
                .iter()
                .any(|st| st.label != e.src.label && name_key(&st.write.array) == victim_array);
            prop_assert!(has_killer, "dead flow without any killer\n{}", &src);
        }
    }

    // Value sources only shrink under the extended analysis.
    for st in &info.stmts {
        for (idx, _) in st.reads.iter().enumerate() {
            let s_src = std.value_sources(st.label, idx);
            let e_src = ext.value_sources(st.label, idx);
            prop_assert!(
                e_src.iter().all(|x| s_src.contains(x)),
                "extended sources {:?} not within standard {:?}\n{}",
                e_src,
                s_src,
                &src
            );
        }
    }
    Ok(())
}

#[test]
fn pipeline_invariants_hold() {
    check(&Config::with_cases(96), gen_spec, prop_pipeline_invariants);
}

/// Ported from the historical proptest seed file
/// (`pipeline_fuzz.proptest-regressions`, `cc 4874656d…`) before it was
/// deleted: a 2-deep nest of four same-array statements with mixed
/// coefficients that once tripped the kill/cover invariants.
#[test]
fn regression_two_deep_mixed_coefficient_nest() {
    let spec = ProgSpec {
        two_deep: true,
        stmts: vec![
            StmtSpec {
                array: 0,
                write_sub: (2, 1, -2),
                read_array: 0,
                read_sub: (0, 0, 0),
            },
            StmtSpec {
                array: 0,
                write_sub: (2, 1, 0),
                read_array: 0,
                read_sub: (1, 1, 0),
            },
            StmtSpec {
                array: 0,
                write_sub: (0, 0, 0),
                read_array: 0,
                read_sub: (1, 1, 0),
            },
            StmtSpec {
                array: 0,
                write_sub: (2, 1, 0),
                read_array: 0,
                read_sub: (0, 2, 2),
            },
        ],
        trailing_read: false,
    };
    check_value(&spec, prop_pipeline_invariants);
}

/// The case the fuzzer found: non-unit subscript coefficients produce
/// inexact eliminations whose splinter cascades exhausted the (then
/// global) budget. The analysis must degrade conservatively, not fail.
#[test]
fn fuzz_found_budget_exhaustion_degrades_gracefully() {
    let src = "
        sym n;
        for i := 1 to n do
        for j := 1 to n do
          aa(2*i + 1*j + -2) := cc(1*i + 1*j + -2) + 1;
          aa(2*i + 1*j + 0) := aa(1*i + 1*j + -2) + 1;
          cc(1*i + 2*j + 1) := aa(1*i + 1*j + 1) + 1;
          aa(2*i + 2*j + 2) := aa(0*i + 2*j + 2) + 1;
        endfor
        endfor
        for i := 1 to n do
          x := aa(i);
        endfor
    ";
    let program = tiny::Program::parse(src).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let std = analyze_program(&info, &AnalysisConfig::standard()).unwrap();
    let ext = analyze_program(&info, &AnalysisConfig::extended()).unwrap();
    assert_eq!(std.flows.len(), ext.flows.len());
    // Whatever the extended analysis managed within budget is sound; at
    // minimum it must not report fewer pairs or error out.
    assert!(ext.flows.iter().all(|d| !d.cases.is_empty()));
}
