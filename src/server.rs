//! Analysis server mode: a long-lived `tinydep --serve` daemon.
//!
//! A one-shot `tinydep` run pays the full cost of cold caches on every
//! invocation: the canonical-form memo cache starts empty and the
//! interned row store is rebuilt from scratch. Driving many analyses
//! from an editor, a build system, or a test harness therefore repeats
//! work that the solver has already done. The server keeps one
//! [`omega::SolverCache`] and the process-wide row store warm across
//! requests, so repeat queries (and the heavily shared sub-problems of
//! *different* programs) are served from cache.
//!
//! # Protocol
//!
//! Line-delimited JSON: one request per line in, one response per line
//! out, in request order. Over stdio (`tinydep --serve`) or a Unix
//! domain socket (`tinydep --serve=PATH`).
//!
//! Requests are JSON objects with an `op` field and an optional numeric
//! `id` that is echoed in the response:
//!
//! ```text
//! {"id":1,"op":"analyze","source":"for i := 1 to n do a(i) := a(i-1); endfor"}
//! {"id":2,"op":"analyze","corpus":"cholsky","options":{"all":true}}
//! {"id":3,"op":"parallelize","corpus":"cholsky"}
//! {"id":4,"op":"stats"}
//! {"id":5,"op":"gc"}
//! {"id":6,"op":"ping"}
//! {"id":7,"op":"shutdown"}
//! ```
//!
//! (There is also a `panic` op that deliberately panics inside the
//! request handler — a diagnostic back door for exercising the panic
//! containment below; it answers with an error response.)
//!
//! `analyze` takes the program text in `source` (or a built-in corpus
//! program by `corpus` name) plus an `options` object of booleans
//! mirroring the one-shot flags — `standard`, `all`, `parallel`,
//! `storage_kills`, `signs`, `fortran` — and a `format` of `"text"`
//! (default), `"json"`, or `"dot"`. The rendered report is returned as
//! an escaped string:
//!
//! ```text
//! {"id":1,"ok":true,"report":"live flow dependences:\n..."}
//! {"id":7,"ok":false,"error":"parse error: ..."}
//! ```
//!
//! `parallelize` takes the same `source`/`corpus` input (honoring the
//! `fortran` and `storage_kills` options) and returns the
//! `tinydep --parallelize` decision report — annotated source, the DOT
//! graph of surviving dependences, and the kills-on/off summary line —
//! byte-identical to the one-shot run.
//!
//! Reports are **byte-identical** to what a one-shot `tinydep` run with
//! the same flags prints: both paths render through
//! [`render_text_report`] (or the shared JSON/DOT emitters), and the
//! solver's determinism contract guarantees cache state can never leak
//! into a result.
//!
//! # Concurrency and cache sharing
//!
//! Requests are batched: the first request is taken blocking, then up
//! to [`MAX_BATCH`]`- 1` more are drained without waiting, and the
//! batch fans out over one long-lived two-level [`depend::Pool`].
//! Requests are the outer work items; each analysis additionally
//! submits its pair-stage batches to the *same* pool (via
//! [`depend::analyze_program_on`]), so a lone heavy request on an
//! otherwise idle server fans its pairs across every worker instead of
//! monopolizing one. The pool's merges preserve order at both levels,
//! so responses come back in request order no matter which worker ran
//! what. Every request sees the single shared [`omega::SolverCache`];
//! per-request `Config` cache settings are fixed (memoization on, no
//! per-request cache file).
//!
//! In socket mode each connection gets a reader thread, but all
//! requests funnel into the one batching dispatcher, so M concurrent
//! clients share the pool and the cache exactly like one pipelined
//! client.
//!
//! # Panic containment
//!
//! A panic while handling a request (a solver invariant violation, the
//! diagnostic `panic` op) must not kill the daemon or poison the shared
//! pool: each request runs under `catch_unwind` at the request
//! boundary, the offending request answers with an `"internal error"`
//! response, and the rest of its batch completes normally. The solver
//! cache and row store use poison-proof locks, so a contained panic
//! cannot wedge them either.
//!
//! # Row-store GC policy
//!
//! Interned rows are freed when their last strong reference drops, but
//! the store's `Weak` index entries linger until swept. A one-shot run
//! never cares; a daemon would accumulate dead index entries from every
//! request it ever served. The store itself sweeps when its dead count
//! crosses a threshold (see `omega::row`), and the server additionally
//! calls [`omega::row_store_gc`] after every batch, so the live-row
//! count observed by `stats` is flat across a soak: it reflects only
//! rows still referenced by the shared solver cache, not request
//! history.
//!
//! # Lifetime
//!
//! With `--cache-file=PATH` the server loads the persistent cache once
//! at startup and saves it (atomically — temp file plus rename) once at
//! shutdown. Shutdown happens on `{"op":"shutdown"}` or, in stdio mode,
//! on EOF. Requests already read when a shutdown request is processed
//! are still answered.

use std::fmt::Write as _;
use std::io::{BufRead as _, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use depend::{Config, ReportOptions};

use crate::json::{self, Json};

/// Requests taken per batch: one blocking receive plus up to this many
/// total drained without waiting, fanned over the worker pool together.
pub const MAX_BATCH: usize = 64;

/// Which sections of the one-shot text report to render. Mirrors the
/// `--all`, `--signs` and `--parallel` flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReportView {
    /// Also render anti and output dependences (`--all`).
    pub all: bool,
    /// Render §2.1.1 partially compressed sign sets (`--signs`).
    pub signs: bool,
    /// Render loop parallelism and privatization verdicts
    /// (`--parallel`).
    pub parallel: bool,
}

/// Renders the default text report exactly as one-shot `tinydep` prints
/// it — the single rendering path shared by the CLI and the server, so
/// a server response is byte-identical to the one-shot run with the
/// same flags.
pub fn render_text_report(
    info: &tiny::ProgramInfo,
    analysis: &depend::Analysis,
    view: &ReportView,
) -> String {
    let graph = depend::DepGraph::new(info, analysis);
    let ropts = ReportOptions::default();
    let mut out = String::new();
    out.push_str("live flow dependences:\n");
    out.push_str(&depend::live_flow_table(&graph, &ropts));
    if graph.dead_flows().next().is_some() {
        out.push_str("\ndead flow dependences:\n");
        out.push_str(&depend::dead_flow_table(&graph, &ropts));
    }
    if view.all {
        out.push_str("\nanti dependences:\n");
        for e in graph.edges_of_kind(depend::DepKind::Anti) {
            let _ = writeln!(out, "{}", depend::format_edge(e, &ropts));
        }
        out.push_str("\noutput dependences:\n");
        for e in graph.edges_of_kind(depend::DepKind::Output) {
            let _ = writeln!(out, "{}", depend::format_edge(e, &ropts));
        }
    }
    if view.signs {
        out.push_str("\npartially compressed direction-vector sets (live flows):\n");
        let mut budget = omega::Budget::default();
        for d in analysis.live_flows() {
            if d.common == 0 {
                continue;
            }
            // The sign decomposition works on the unordered dependence
            // problem: the union of the live cases' problems per level.
            let mut sets = Vec::new();
            for case in &d.cases {
                match depend::dirvec::partially_compressed_direction_vectors(
                    &case.problem,
                    &case.src_vars.iters,
                    &case.dst_vars.iters,
                    d.common,
                    false,
                    &mut budget,
                ) {
                    Ok(vs) => sets.extend(vs.into_iter().map(|v| v.to_string())),
                    Err(e) => {
                        sets.push(format!("<error: {e}>"));
                    }
                }
            }
            sets.sort();
            sets.dedup();
            let _ = writeln!(
                out,
                "  {} -> {}: {{{}}}",
                d.src.label,
                d.dst.label,
                sets.join(", ")
            );
        }
    }
    if view.parallel {
        out.push_str("\nloop parallelism:\n");
        let legality = depend::Legality::new(info, analysis);
        for l in depend::program_loops(info) {
            let verdict = if legality.is_parallel(&l) {
                "PARALLEL".to_string()
            } else {
                match legality.parallel_with_privatization(&l) {
                    Some(arrays) if arrays.is_empty() => "PARALLEL".to_string(),
                    Some(arrays) => format!(
                        "PARALLEL after privatizing {}",
                        arrays.into_iter().collect::<Vec<_>>().join(", ")
                    ),
                    None => "sequential".to_string(),
                }
            };
            let _ = writeln!(out, "  {:<6} depth {}: {}", l.var, l.depth, verdict);
        }
    }
    out
}

/// Output format of an `analyze` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Dot,
}

/// Per-request analysis options, decoded from the `options` object.
#[derive(Debug, Clone, Copy)]
struct AnalyzeOptions {
    standard: bool,
    all: bool,
    parallel: bool,
    storage_kills: bool,
    signs: bool,
    fortran: bool,
    format: Format,
}

impl AnalyzeOptions {
    fn from_request(req: &Json) -> Result<AnalyzeOptions, String> {
        let opts = req.get("options");
        let flag = |key: &str| -> Result<bool, String> {
            match opts.and_then(|o| o.get(key)) {
                None => Ok(false),
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| format!("option {key:?} must be a boolean")),
            }
        };
        let format = match opts.and_then(|o| o.get("format")) {
            None => Format::Text,
            Some(v) => match v.as_str() {
                Some("text") => Format::Text,
                Some("json") => Format::Json,
                Some("dot") => Format::Dot,
                _ => return Err("option \"format\" must be \"text\", \"json\" or \"dot\"".into()),
            },
        };
        Ok(AnalyzeOptions {
            standard: flag("standard")?,
            all: flag("all")?,
            parallel: flag("parallel")?,
            storage_kills: flag("storage_kills")?,
            signs: flag("signs")?,
            fortran: flag("fortran")?,
            format,
        })
    }

    fn view(&self) -> ReportView {
        ReportView {
            all: self.all,
            signs: self.signs,
            parallel: self.parallel,
        }
    }
}

/// One response line, plus whether the request asked the server to stop.
#[derive(Debug, Clone)]
pub struct Response {
    /// The serialized JSON response (no trailing newline).
    pub line: String,
    /// True when this response answers a `shutdown` request.
    pub shutdown: bool,
}

impl Response {
    fn ok(id: Option<i64>, body: &str, shutdown: bool) -> Response {
        let mut line = String::from("{");
        if let Some(id) = id {
            let _ = write!(line, "\"id\":{id},");
        }
        line.push_str("\"ok\":true");
        if !body.is_empty() {
            line.push(',');
            line.push_str(body);
        }
        line.push('}');
        Response { line, shutdown }
    }

    fn error(id: Option<i64>, msg: &str) -> Response {
        let mut line = String::from("{");
        if let Some(id) = id {
            let _ = write!(line, "\"id\":{id},");
        }
        let _ = write!(line, "\"ok\":false,\"error\":\"{}\"}}", json::escape(msg));
        Response {
            line,
            shutdown: false,
        }
    }
}

/// The analysis server: one shared solver cache, one batching worker
/// pool, a warm row store. See the module docs for the protocol.
pub struct Server {
    cache: Arc<omega::SolverCache>,
    threads: usize,
    cache_file: Option<PathBuf>,
    requests: AtomicU64,
    shutdown: AtomicBool,
}

/// Best-effort text of a caught panic payload (`panic!` with a string
/// literal or a formatted message covers practically every real panic).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

impl Server {
    /// Creates a server with `threads` pool workers (`0` = one per
    /// available core). With a `cache_file`, the persistent cache is
    /// loaded now and saved back (atomically) at shutdown; a missing or
    /// damaged file simply means a cold start.
    pub fn new(threads: usize, cache_file: Option<PathBuf>) -> Server {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        let cache = match &cache_file {
            Some(path) => omega::SolverCache::load_from(path),
            None => omega::SolverCache::new(),
        };
        Server {
            cache: Arc::new(cache),
            threads,
            cache_file,
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The shared solver cache (for inspection in tests and stats).
    pub fn cache(&self) -> &Arc<omega::SolverCache> {
        &self.cache
    }

    /// Handles one request line and produces its response line, or
    /// `None` for a blank line. Processing is synchronous and
    /// `&self`-only, so any number of requests may be handled
    /// concurrently; ordering is the caller's concern (the run loops
    /// preserve request order). Analyses run single-threaded; the run
    /// loops use [`Server::handle_line_on`] to fan pair batches onto
    /// their shared pool.
    pub fn handle_line(&self, line: &str) -> Option<Response> {
        self.handle_line_on(line, None)
    }

    /// [`Server::handle_line`] with an optional shared [`depend::Pool`]:
    /// when given, an `analyze` request fans its pair-stage batches onto
    /// that pool, so one heavy request can use every worker. A panic
    /// while handling the request is caught here, at the request
    /// boundary, and turned into an `"internal error"` response — the
    /// daemon and the rest of the batch are unaffected.
    pub fn handle_line_on(&self, line: &str, pool: Option<&depend::Pool>) -> Option<Response> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return None;
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.dispatch(trimmed, pool)
        })) {
            Ok(resp) => Some(resp),
            Err(payload) => {
                // Re-parse just for the id: the panic may have struck
                // anywhere in dispatch, so nothing from it survives.
                let id = json::parse(trimmed)
                    .ok()
                    .and_then(|req| req.get("id").and_then(Json::as_i64));
                let what = panic_message(payload.as_ref());
                Some(Response::error(
                    id,
                    &format!("internal error: request panicked: {what}"),
                ))
            }
        }
    }

    fn dispatch(&self, trimmed: &str, pool: Option<&depend::Pool>) -> Response {
        let req = match json::parse(trimmed) {
            Ok(v) => v,
            Err(e) => return Response::error(None, &format!("bad request: {e}")),
        };
        let id = req.get("id").and_then(Json::as_i64);
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op,
            None => return Response::error(id, "missing \"op\" field"),
        };
        match op {
            "ping" => Response::ok(id, "\"pong\":true", false),
            "gc" => {
                let swept = omega::row_store_gc();
                let live = omega::row_store_stats().live;
                Response::ok(id, &format!("\"swept\":{swept},\"live\":{live}"), false)
            }
            "stats" => Response::ok(id, &format!("\"stats\":{}", self.stats_json()), false),
            "shutdown" => Response::ok(id, "\"shutdown\":true", true),
            "analyze" => match self.try_analyze(&req, pool) {
                Ok(report) => Response::ok(
                    id,
                    &format!("\"report\":\"{}\"", json::escape(&report)),
                    false,
                ),
                Err(e) => Response::error(id, &e),
            },
            "parallelize" => match self.try_parallelize(&req, pool) {
                Ok(report) => Response::ok(
                    id,
                    &format!("\"report\":\"{}\"", json::escape(&report)),
                    false,
                ),
                Err(e) => Response::error(id, &e),
            },
            // Diagnostic back door: proves a panicking request is
            // contained to its own response (see the module docs).
            "panic" => panic!("deliberate panic (op \"panic\")"),
            other => Response::error(id, &format!("unknown op {other:?}")),
        }
    }

    /// Resolves the request's `source`/`corpus` field into a parsed and
    /// semantically analyzed program — shared by `analyze` and
    /// `parallelize`.
    fn resolve_program(
        req: &Json,
        fortran: bool,
    ) -> Result<(tiny::Program, tiny::ProgramInfo), String> {
        let source: String = if let Some(name) = req.get("corpus").and_then(Json::as_str) {
            tiny::corpus::by_name(name)
                .map(|e| e.source.to_string())
                .ok_or_else(|| format!("no corpus program `{name}`"))?
        } else if let Some(src) = req.get("source").and_then(Json::as_str) {
            src.to_string()
        } else {
            return Err("request needs a \"source\" or \"corpus\" field".into());
        };
        let parsed = if fortran {
            tiny::fortran::parse(&source)
        } else {
            tiny::Program::parse(&source)
        };
        let program = parsed.map_err(|e| e.to_string())?;
        let info = tiny::analyze(&program).map_err(|e| e.to_string())?;
        Ok((program, info))
    }

    /// Runs dependence analysis under the server's cache-pinned config.
    /// With a shared pool, the request's pair batches interleave with
    /// the other requests' on the same workers; without one, the request
    /// runs sequentially.
    fn run_analysis(
        &self,
        info: &tiny::ProgramInfo,
        config: &Config,
        pool: Option<&depend::Pool>,
    ) -> Result<depend::Analysis, String> {
        match pool {
            Some(pool) => {
                depend::analyze_program_on(pool, info, config, Some(Arc::clone(&self.cache)))
            }
            None => depend::analyze_program_with_cache(info, config, Some(Arc::clone(&self.cache))),
        }
        .map_err(|e| format!("analysis failed: {e}"))
    }

    fn try_analyze(&self, req: &Json, pool: Option<&depend::Pool>) -> Result<String, String> {
        let opts = AnalyzeOptions::from_request(req)?;
        let (_, info) = Self::resolve_program(req, opts.fortran)?;
        // The server owns the cache, so the per-run cache knobs are
        // pinned here.
        let config = Config {
            storage_kills: opts.storage_kills,
            threads: 1,
            memo_cache: true,
            cache_file: None,
            ..if opts.standard {
                Config::standard()
            } else {
                Config::extended()
            }
        };
        let analysis = self.run_analysis(&info, &config, pool)?;
        Ok(match opts.format {
            Format::Json => {
                let graph = depend::DepGraph::new(&info, &analysis);
                depend::report::to_json(&graph)
            }
            Format::Dot => {
                let graph = depend::DepGraph::new(&info, &analysis);
                depend::dot::to_dot(
                    &graph,
                    &depend::dot::DotOptions {
                        antis: opts.all,
                        outputs: opts.all,
                        dead: true,
                    },
                )
            }
            Format::Text => render_text_report(&info, &analysis, &opts.view()),
        })
    }

    /// Handles a `parallelize` request: the full decision-engine report
    /// (annotated source, surviving-dependence DOT graph, summary),
    /// byte-identical to one-shot `tinydep --parallelize` on the same
    /// program. Honors the `fortran` and `storage_kills` options; the
    /// analysis is always the extended one (the report's point is the
    /// kills-on/off delta).
    fn try_parallelize(&self, req: &Json, pool: Option<&depend::Pool>) -> Result<String, String> {
        let opts = AnalyzeOptions::from_request(req)?;
        let (program, info) = Self::resolve_program(req, opts.fortran)?;
        let config = Config {
            storage_kills: opts.storage_kills,
            threads: 1,
            memo_cache: true,
            cache_file: None,
            ..Config::extended()
        };
        let analysis = self.run_analysis(&info, &config, pool)?;
        let graph = depend::DepGraph::new(&info, &analysis);
        Ok(depend::render_parallelize_report(&program, &graph))
    }

    /// Row-store and solver-cache counters as a JSON object — the body
    /// of a `stats` response.
    pub fn stats_json(&self) -> String {
        let r = omega::row_store_stats();
        let c = self.cache.stats();
        format!(
            "{{\"requests\":{},\
             \"rows\":{{\"built\":{},\"live\":{},\"dead\":{},\"interns\":{},\
             \"shared\":{},\"reminted\":{},\"sweeps\":{},\"swept\":{},\"shards\":{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"inserts\":{},\"entries\":{},\
             \"full_canons\":{},\"delta_canons\":{},\
             \"checkpoint_resumes\":{},\"checkpoint_rebuilds\":{},\"base_forms\":{},\
             \"base_sweeps\":{},\"base_evicted\":{},\"hit_rate\":\"{:.4}\"}}}}",
            self.requests.load(Ordering::Relaxed),
            r.built,
            r.live,
            r.dead,
            r.interns,
            r.shared,
            r.reminted,
            r.sweeps,
            r.swept,
            r.shards.len(),
            c.hits,
            c.misses,
            c.inserts,
            c.entries,
            c.full_canons,
            c.delta_canons,
            c.checkpoint_resumes,
            c.checkpoint_rebuilds,
            c.base_forms,
            c.base_sweeps,
            c.base_evicted,
            c.hit_rate(),
        )
    }

    fn save_cache(&self) {
        if let Some(path) = &self.cache_file {
            if let Err(e) = self.cache.save_to(path) {
                eprintln!("tinydep: saving cache to {}: {e}", path.display());
            }
        }
    }

    /// Takes one batch off a request channel: blocking receive for the
    /// first item, then drain without waiting up to [`MAX_BATCH`].
    /// `None` means the channel is closed.
    fn take_batch<T>(rx: &mpsc::Receiver<T>) -> Option<Vec<T>> {
        let first = rx.recv().ok()?;
        let mut batch = vec![first];
        while batch.len() < MAX_BATCH {
            match rx.try_recv() {
                Ok(item) => batch.push(item),
                Err(_) => break,
            }
        }
        Some(batch)
    }

    /// Serves line-delimited JSON over stdin/stdout until EOF or a
    /// `shutdown` request, then saves the persistent cache (if
    /// configured). Responses are written in request order.
    pub fn run_stdio(&self) -> std::io::Result<()> {
        let (tx, rx) = mpsc::channel::<String>();
        // Reader thread: decouples blocking stdin reads from batch
        // processing, so a batch forms from whatever has arrived. The
        // thread exits on EOF, or on a failed send once `rx` is
        // dropped; it is detached rather than joined because it may be
        // parked in a blocking read when the server shuts down.
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        let stdout = std::io::stdout();
        // One two-level pool for the server's lifetime: requests are
        // the outer items, and each analysis feeds its pair batches
        // back into the same pool (see the module docs).
        let pool = depend::Pool::new(self.threads);
        'serve: while let Some(batch) = Self::take_batch(&rx) {
            let responses = pool.map_infallible(batch, |_, line| {
                self.handle_line_on(&line, Some(&pool))
            });
            let mut out = stdout.lock();
            let mut stop = false;
            for resp in responses.into_iter().flatten() {
                writeln!(out, "{}", resp.line)?;
                stop |= resp.shutdown;
            }
            out.flush()?;
            drop(out);
            // Keep the row-store index flat: rows die as request-local
            // problems drop; sweep their Weak residue between batches.
            omega::row_store_gc();
            if stop {
                break 'serve;
            }
        }
        self.save_cache();
        Ok(())
    }

    /// Serves line-delimited JSON over a Unix domain socket at `path`
    /// until a `shutdown` request, then saves the persistent cache (if
    /// configured). Each connection is read by its own thread, but all
    /// requests funnel into one batching dispatcher on the shared
    /// worker pool; per connection, responses come back in request
    /// order. A stale socket file at `path` is replaced; the file is
    /// removed again on shutdown.
    #[cfg(unix)]
    pub fn run_unix(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::os::unix::net::{UnixListener, UnixStream};

        struct Job {
            line: String,
            reply: mpsc::Sender<Response>,
        }

        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let (jtx, jrx) = mpsc::channel::<Job>();
        let pool = depend::Pool::new(self.threads);
        let pool = &pool;

        std::thread::scope(|scope| -> std::io::Result<()> {
            // The batching dispatcher: same loop shape as stdio mode,
            // with responses routed back to their connection.
            scope.spawn(move || {
                while let Some(batch) = Self::take_batch(&jrx) {
                    let responses = pool.map_infallible(batch, |_, job: Job| {
                        (job.reply, self.handle_line_on(&job.line, Some(pool)))
                    });
                    let mut stop = false;
                    for (reply, resp) in responses {
                        if let Some(resp) = resp {
                            stop |= resp.shutdown;
                            let _ = reply.send(resp);
                        }
                    }
                    omega::row_store_gc();
                    if stop {
                        self.shutdown.store(true, Ordering::SeqCst);
                        // Unblock the accept loop below.
                        let _ = UnixStream::connect(path);
                        break;
                    }
                }
            });

            for conn in listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let jtx = jtx.clone();
                scope.spawn(move || {
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    let reader = std::io::BufReader::new(read_half);
                    let mut writer = std::io::BufWriter::new(stream);
                    for line in reader.lines() {
                        let Ok(line) = line else { break };
                        let (rtx, rrx) = mpsc::channel();
                        if jtx.send(Job { line, reply: rtx }).is_err() {
                            break; // dispatcher shut down
                        }
                        let Ok(resp) = rrx.recv() else {
                            continue; // blank line: no response
                        };
                        if writeln!(writer, "{}", resp.line).is_err() || writer.flush().is_err() {
                            break;
                        }
                        if resp.shutdown {
                            break;
                        }
                    }
                });
            }
            // Closing the job channel ends the dispatcher (if a client
            // vanished without sending `shutdown`, e.g. bind errors).
            drop(jtx);
            Ok(())
        })?;

        let _ = std::fs::remove_file(path);
        self.save_cache();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(1, None)
    }

    #[test]
    fn ping_and_unknown_ops() {
        let s = server();
        let r = s.handle_line("{\"id\":7,\"op\":\"ping\"}").unwrap();
        assert_eq!(r.line, "{\"id\":7,\"ok\":true,\"pong\":true}");
        assert!(!r.shutdown);
        let r = s.handle_line("{\"op\":\"frobnicate\"}").unwrap();
        assert_eq!(r.line, "{\"ok\":false,\"error\":\"unknown op \\\"frobnicate\\\"\"}");
        assert!(s.handle_line("   ").is_none());
    }

    #[test]
    fn malformed_requests_error_without_panicking() {
        let s = server();
        for bad in [
            "not json at all",
            "{\"op\":",
            "{}",
            "[1,2,3]",
            "{\"op\":\"analyze\"}",
            "{\"op\":\"analyze\",\"source\":\"for i :=\"}",
            "{\"op\":\"analyze\",\"corpus\":\"no_such_program\"}",
            "{\"op\":\"analyze\",\"source\":\"\",\"options\":{\"all\":\"yes\"}}",
            "{\"op\":\"analyze\",\"source\":\"\",\"options\":{\"format\":\"yaml\"}}",
        ] {
            let r = s.handle_line(bad).unwrap();
            assert!(
                r.line.contains("\"ok\":false"),
                "{bad}: expected an error, got {}",
                r.line
            );
            assert!(!r.shutdown);
        }
    }

    #[test]
    fn analyze_matches_the_one_shot_rendering() {
        let s = server();
        let r = s
            .handle_line("{\"id\":1,\"op\":\"analyze\",\"corpus\":\"example3\"}")
            .unwrap();
        assert!(r.line.starts_with("{\"id\":1,\"ok\":true,\"report\":\""), "{}", r.line);

        let program = tiny::Program::parse(
            tiny::corpus::by_name("example3").expect("corpus program").source,
        )
        .unwrap();
        let info = tiny::analyze(&program).unwrap();
        let analysis = depend::analyze_program(&info, &Config::extended()).unwrap();
        let expected = render_text_report(&info, &analysis, &ReportView::default());
        let expected_line = format!(
            "{{\"id\":1,\"ok\":true,\"report\":\"{}\"}}",
            json::escape(&expected)
        );
        assert_eq!(r.line, expected_line);
    }

    #[test]
    fn stats_and_gc_round_trip() {
        let s = server();
        s.handle_line("{\"op\":\"analyze\",\"corpus\":\"example1\"}")
            .unwrap();
        let r = s.handle_line("{\"id\":2,\"op\":\"stats\"}").unwrap();
        let v = json::parse(&r.line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let stats = v.get("stats").expect("stats object");
        assert!(stats.get("requests").and_then(Json::as_i64).unwrap() >= 2);
        assert!(stats.get("rows").and_then(|r| r.get("built")).is_some());
        assert!(stats.get("cache").and_then(|c| c.get("hits")).is_some());

        let r = s.handle_line("{\"id\":3,\"op\":\"gc\"}").unwrap();
        let v = json::parse(&r.line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert!(v.get("swept").and_then(Json::as_i64).is_some());
        assert!(v.get("live").and_then(Json::as_i64).is_some());
    }

    #[test]
    fn shutdown_is_flagged() {
        let s = server();
        let r = s.handle_line("{\"id\":9,\"op\":\"shutdown\"}").unwrap();
        assert_eq!(r.line, "{\"id\":9,\"ok\":true,\"shutdown\":true}");
        assert!(r.shutdown);
    }

    #[test]
    fn repeat_requests_hit_the_shared_cache() {
        let s = server();
        s.handle_line("{\"op\":\"analyze\",\"corpus\":\"example2\"}")
            .unwrap();
        let cold = s.cache().stats();
        s.handle_line("{\"op\":\"analyze\",\"corpus\":\"example2\"}")
            .unwrap();
        let warm = s.cache().stats();
        assert!(cold.misses > 0, "first request found a warm cache");
        assert_eq!(
            warm.misses, cold.misses,
            "repeat request missed the shared cache"
        );
        assert!(warm.hits > cold.hits, "repeat request did not hit the cache");
    }
}
