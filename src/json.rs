//! A minimal JSON reader/writer for the analysis-server protocol.
//!
//! The hermetic-build policy (no external crates) rules out `serde`;
//! the protocol needs only a small, strict subset of JSON: objects,
//! arrays, strings with full escape handling, 64-bit integers,
//! booleans and `null`. Non-integer numbers are rejected — no protocol
//! field carries one, and refusing them is safer than silently
//! truncating.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the only number form the protocol uses).
    Num(i64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected character {:?} at byte {}",
                char::from(b),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (not supported)"
            ));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse::<i64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale; the input is valid UTF-8,
            // so byte slices between structural characters are too.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("input is UTF-8 and the run breaks on ASCII"),
            );
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape_char()?);
                }
                Some(b) => {
                    return Err(format!(
                        "unescaped control character 0x{b:02x} in string at byte {}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn escape_char(&mut self) -> Result<char, String> {
        let e = self
            .peek()
            .ok_or_else(|| "unterminated escape".to_string())?;
        self.pos += 1;
        Ok(match e {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.peek() != Some(b'\\') {
                        return Err("lone high surrogate".into());
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err("lone high surrogate".into());
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err("invalid low surrogate".into());
                    }
                    let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    char::from_u32(c).ok_or("invalid surrogate pair")?
                } else {
                    char::from_u32(hi).ok_or("lone low surrogate")?
                }
            }
            other => {
                return Err(format!(
                    "unknown escape \\{} at byte {}",
                    char::from(other),
                    self.pos - 1
                ))
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if !fields.iter().any(|(k, _)| *k == key) {
                fields.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"id":3,"op":"analyze","source":"a := 1","options":{"all":true}}"#)
            .unwrap();
        assert_eq!(v.get("id").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("analyze"));
        assert_eq!(
            v.get("options").and_then(|o| o.get("all")).and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(parse("[1, -2, 3]").unwrap(), Json::Arr(vec![
            Json::Num(1),
            Json::Num(-2),
            Json::Num(3)
        ]));
        assert_eq!(parse(" null ").unwrap(), Json::Null);
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{8} \u{1f} héllo ✓ 𝄞";
        let escaped = escape(original);
        let parsed = parse(&format!("\"{escaped}\"")).unwrap();
        assert_eq!(parsed, Json::Str(original.to_string()));
        // Explicit \u forms, including a surrogate pair.
        assert_eq!(
            parse(r#""\u0041\u00e9\ud834\udd1e""#).unwrap(),
            Json::Str("Aé𝄞".to_string())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "{\"a\":1,}",
            "1.5",
            "1e3",
            "tru",
            "\"\\q\"",
            "\"\\ud834\"",
            "\"\\u12\"",
            "{\"a\":1} extra",
            "99999999999999999999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn duplicate_keys_keep_the_first() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn control_characters_escape_as_u_sequences() {
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("\u{7f}"), "\u{7f}".to_string());
    }
}
