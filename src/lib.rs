#![warn(missing_docs)]
//! Umbrella crate re-exporting the whole reproduction.
pub use depend;
pub use omega;
pub use tiny;
