#![warn(missing_docs)]
//! Umbrella crate re-exporting the whole reproduction, plus the
//! analysis-server mode behind `tinydep --serve` (see [`server`]).
pub use depend;
pub use omega;
pub use tiny;

pub mod json;
pub mod server;
