//! `tinydep` — command-line dependence analyzer, in the spirit of the
//! augmented `tiny` tool the paper distributes.
//!
//! ```text
//! USAGE: tinydep [OPTIONS] <FILE... | corpus:NAME... | - | --corpus>
//!
//! OPTIONS:
//!   --standard      standard analysis only (no kills/covers/refinement)
//!   --fortran       parse the input as fixed-form FORTRAN (also inferred
//!                   from a .f/.f77/.for extension)
//!   --all           also print anti and output dependences
//!   --parallel      report loop parallelism and privatization
//!   --parallelize   run the parallelization decision engine: print the
//!                   source annotated with a `!$` verdict per loop
//!                   (PARALLELIZABLE / privatization / blocking
//!                   dependences), the DOT graph of surviving
//!                   dependences, and a kills-on/off summary whose
//!                   headline is the loops parallelizable only once
//!                   false dependences are killed. In corpus mode, a
//!                   `== corpus parallelize summary ==` table follows
//!                   the per-program sections
//!   --storage-kills also run kill analysis on output dependences
//!   --dot           emit the dependence graph in Graphviz DOT format
//!   --json          emit all dependences as JSON
//!   --signs         print partially compressed direction-vector sets
//!                   (the paper's §2.1.1) for each live flow dependence
//!   --threads=N     analyze on N worker threads (0 = one per core;
//!                   the output is identical at every setting). With
//!                   one input the pairs of that program fan out; with
//!                   several inputs (or --corpus) whole programs and
//!                   their pair batches share one two-level work pool,
//!                   so a lone heavy program still fills every worker
//!   --corpus        analyze every built-in corpus program in one run;
//!                   reports print as `== NAME ==` sections in corpus
//!                   order (text format only). Several FILE /
//!                   corpus:NAME inputs behave the same way
//!   --no-cache      disable the canonical-problem memo cache
//!   --no-base-checkpoint
//!                   solve every delta-query memo miss from scratch
//!                   instead of resuming the pair's checkpointed base
//!                   tableau; the report is byte-identical either way
//!   --cache-file=PATH
//!                   persist the memo cache: load it from PATH before the
//!                   analysis (ignored when missing/corrupt/stale) and
//!                   save it back after, so re-analyzing the same program
//!                   is served from cache. The report is byte-identical
//!                   either way.
//!   --stats         print solver-cache, row-store and pre-filter
//!                   counters to stderr after the analysis
//!   --serve         run as a long-lived analysis server on
//!                   stdin/stdout: line-delimited JSON requests in,
//!                   one JSON response per line out, with the solver
//!                   cache and row store kept warm across requests
//!                   (see the `server` module docs for the protocol)
//!   --serve=PATH    the same server on a Unix domain socket at PATH,
//!                   accepting concurrent clients
//!   --list-corpus   list built-in corpus programs and exit
//! ```
//!
//! Examples:
//!
//! ```console
//! $ tinydep corpus:cholsky
//! $ tinydep --parallel corpus:double_buffer
//! $ tinydep --parallelize corpus:cholsky
//! $ tinydep --parallelize --corpus
//! $ tinydep --threads=8 --corpus
//! $ tinydep --threads=4 corpus:cholsky corpus:lu loops.t
//! $ echo 'for i := 1 to n do a(i) := a(i-1); endfor' | tinydep -
//! ```

use std::io::Read as _;
use std::process::ExitCode;

use depend::{analyze_corpus, analyze_program, Config};
use omega_repro::server::{render_text_report, ReportView, Server};

/// Count allocations so `--stats` can report them alongside the solver
/// counters.
#[global_allocator]
static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc::new();

/// How `--serve` was requested: over stdio or a Unix domain socket.
enum ServeMode {
    Stdio,
    Socket(std::path::PathBuf),
}

struct Options {
    standard: bool,
    all: bool,
    parallel: bool,
    parallelize: bool,
    storage_kills: bool,
    fortran: bool,
    dot: bool,
    json: bool,
    signs: bool,
    threads: usize,
    no_cache: bool,
    no_base_checkpoint: bool,
    cache_file: Option<std::path::PathBuf>,
    stats: bool,
    serve: Option<ServeMode>,
    corpus_all: bool,
    inputs: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        standard: false,
        all: false,
        parallel: false,
        parallelize: false,
        storage_kills: false,
        fortran: false,
        dot: false,
        json: false,
        signs: false,
        threads: 1,
        no_cache: false,
        no_base_checkpoint: false,
        cache_file: None,
        stats: false,
        serve: None,
        corpus_all: false,
        inputs: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--standard" => opts.standard = true,
            "--all" => opts.all = true,
            "--parallel" => opts.parallel = true,
            "--parallelize" => opts.parallelize = true,
            "--storage-kills" => opts.storage_kills = true,
            "--fortran" => opts.fortran = true,
            "--dot" => opts.dot = true,
            "--signs" => opts.signs = true,
            "--json" => opts.json = true,
            "--no-cache" => opts.no_cache = true,
            "--no-base-checkpoint" => opts.no_base_checkpoint = true,
            "--stats" => opts.stats = true,
            "--serve" => opts.serve = Some(ServeMode::Stdio),
            "--corpus" => opts.corpus_all = true,
            "--list-corpus" => {
                for e in tiny::corpus::all() {
                    println!("{}", e.name);
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("USAGE: tinydep [--standard] [--all] [--parallel] [--storage-kills] [--threads=N] <FILE... | corpus:NAME... | - | --corpus>");
                std::process::exit(0);
            }
            other if other.starts_with("--threads=") => {
                opts.threads = other["--threads=".len()..]
                    .parse()
                    .map_err(|_| format!("bad thread count in {other}"))?;
            }
            other if other.starts_with("--serve=") => {
                let path = &other["--serve=".len()..];
                if path.is_empty() {
                    return Err("empty socket path in --serve=".into());
                }
                opts.serve = Some(ServeMode::Socket(path.into()));
            }
            other if other.starts_with("--cache-file=") => {
                let path = &other["--cache-file=".len()..];
                if path.is_empty() {
                    return Err("empty path in --cache-file=".into());
                }
                opts.cache_file = Some(path.into());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}"));
            }
            other => opts.inputs.push(other.to_string()),
        }
    }
    if opts.parallelize && (opts.json || opts.dot || opts.standard) {
        return Err(
            "--parallelize renders its own report (drop --json/--dot/--standard)".into(),
        );
    }
    if opts.serve.is_some() {
        if !opts.inputs.is_empty() || opts.corpus_all {
            return Err("--serve takes no input argument (programs arrive as requests)".into());
        }
    } else if opts.corpus_all {
        if !opts.inputs.is_empty() {
            return Err("--corpus analyzes every built-in program; drop the input arguments".into());
        }
    } else if opts.inputs.is_empty() {
        return Err("no input given (try --help)".into());
    }
    Ok(opts)
}

/// Parses `source` (inferring FORTRAN from the input name unless forced)
/// and runs the `tiny` semantic analysis.
fn front_end(
    name: &str,
    source: &str,
    force_fortran: bool,
) -> Result<(tiny::Program, tiny::sema::ProgramInfo), String> {
    let is_fortran = force_fortran
        || [".f", ".f77", ".for", ".F"]
            .iter()
            .any(|ext| name.ends_with(ext));
    let parsed = if is_fortran {
        tiny::fortran::parse(source)
    } else {
        tiny::Program::parse(source)
    };
    let program = parsed.map_err(|e| e.to_string())?;
    let info = tiny::analyze(&program).map_err(|e| e.to_string())?;
    Ok((program, info))
}

/// The analysis `Config` implied by the command-line options.
fn config_from(opts: &Options) -> Config {
    Config {
        storage_kills: opts.storage_kills,
        threads: opts.threads,
        memo_cache: !opts.no_cache,
        base_checkpoint: !opts.no_base_checkpoint,
        cache_file: opts.cache_file.clone(),
        ..if opts.standard {
            Config::standard()
        } else {
            Config::extended()
        }
    }
}

/// Corpus mode: several inputs (or the whole built-in corpus) analyzed
/// as one batch on a shared two-level pool and one shared solver cache,
/// printed as `== NAME ==` sections in input order.
fn run_corpus(opts: &Options) -> ExitCode {
    if opts.json || opts.dot {
        eprintln!("tinydep: corpus mode prints text reports only (drop --json/--dot)");
        return ExitCode::FAILURE;
    }
    let mut named: Vec<(String, String)> = Vec::new();
    if opts.corpus_all {
        for e in tiny::corpus::all() {
            named.push((e.name.to_string(), e.source.to_string()));
        }
    } else {
        for input in &opts.inputs {
            match read_input(input) {
                Ok(source) => named.push((input.clone(), source)),
                Err(e) => {
                    eprintln!("tinydep: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let mut programs = Vec::with_capacity(named.len());
    let mut infos = Vec::with_capacity(named.len());
    for (name, source) in &named {
        match front_end(name, source, opts.fortran) {
            Ok((program, info)) => {
                programs.push(program);
                infos.push(info);
            }
            Err(e) => {
                eprintln!("tinydep: {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let analyses = match analyze_corpus(&infos, &config_from(opts)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tinydep: analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.parallelize {
        // Per-program decision reports, then the corpus-level table whose
        // `newly` column is the paper's headline: loops parallelizable
        // only once false dependences are killed.
        let mut rows: Vec<(&str, depend::ParallelizeSummary)> = Vec::new();
        let mut total = depend::ParallelizeSummary::default();
        for ((name, _), (program, (info, analysis))) in named
            .iter()
            .zip(programs.iter().zip(infos.iter().zip(analyses.iter())))
        {
            println!("== {name} ==");
            let graph = depend::DepGraph::new(info, analysis);
            print!("{}", depend::render_parallelize_report(program, &graph));
            let summary = depend::ParallelizeSummary::of(&depend::decide_loops(&graph));
            total.add(&summary);
            rows.push((name, summary));
        }
        println!("== corpus parallelize summary ==");
        println!("PROGRAM                LOOPS  PARALLEL  OUTRIGHT  WITHOUT-KILLS  NEWLY");
        for (name, s) in &rows {
            println!(
                "{:<22} {:>5} {:>9} {:>9} {:>14} {:>6}",
                name, s.loops, s.parallel, s.outright, s.pre_parallel, s.newly
            );
        }
        println!(
            "{:<22} {:>5} {:>9} {:>9} {:>14} {:>6}",
            "TOTAL", total.loops, total.parallel, total.outright, total.pre_parallel, total.newly
        );
        return ExitCode::SUCCESS;
    }
    let view = ReportView {
        all: opts.all,
        signs: opts.signs,
        parallel: opts.parallel,
    };
    for ((name, _), (info, analysis)) in named.iter().zip(infos.iter().zip(analyses.iter())) {
        println!("== {name} ==");
        print!("{}", render_text_report(info, analysis, &view));
    }
    if opts.stats {
        // Every analysis carries the same corpus-total cache snapshot;
        // read it off the last one.
        if let Some(last) = analyses.last() {
            let c = &last.stats.cache;
            eprintln!(
                "corpus cache: {} hits / {} lookups ({} inserts, {} entries); \
                 canon: {} full, {} delta; \
                 checkpoints: {} resumed, {} rebuilt; \
                 bases: {} resident, {} sweeps evicted {}",
                c.hits,
                c.lookups(),
                c.inserts,
                c.entries,
                c.full_canons,
                c.delta_canons,
                c.checkpoint_resumes,
                c.checkpoint_rebuilds,
                c.base_forms,
                c.base_sweeps,
                c.base_evicted
            );
        }
        let r = omega::row_store_stats();
        eprintln!(
            "rows: {} live of {} built ({} dead entries across {} shards); \
             {} interns ({} shared, {} re-minted); {} sweeps removed {}",
            r.live,
            r.built,
            r.dead,
            r.shards.len(),
            r.interns,
            r.shared,
            r.reminted,
            r.sweeps,
            r.swept
        );
    }
    ExitCode::SUCCESS
}

fn read_input(input: &str) -> Result<String, String> {
    if input == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else if let Some(name) = input.strip_prefix("corpus:") {
        tiny::corpus::by_name(name)
            .map(|e| e.source.to_string())
            .ok_or_else(|| format!("no corpus program `{name}` (see --list-corpus)"))
    } else {
        std::fs::read_to_string(input).map_err(|e| format!("reading {input}: {e}"))
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tinydep: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(mode) = &opts.serve {
        let server = Server::new(opts.threads, opts.cache_file.clone());
        let served = match mode {
            ServeMode::Stdio => server.run_stdio(),
            #[cfg(unix)]
            ServeMode::Socket(path) => server.run_unix(path),
            #[cfg(not(unix))]
            ServeMode::Socket(_) => {
                eprintln!("tinydep: --serve=PATH needs Unix domain sockets; use --serve");
                return ExitCode::FAILURE;
            }
        };
        if opts.stats {
            eprintln!("server stats: {}", server.stats_json());
        }
        return match served {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("tinydep: serve: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if opts.corpus_all || opts.inputs.len() > 1 {
        return run_corpus(&opts);
    }
    let input_name = opts.inputs[0].as_str();
    let source = match read_input(input_name) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tinydep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (program, info) = match front_end(input_name, &source, opts.fortran) {
        Ok(pi) => pi,
        Err(e) => {
            eprintln!("tinydep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = config_from(&opts);
    let alloc_before = harness::alloc::snapshot();
    let analysis = match analyze_program(&info, &config) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tinydep: analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let alloc_after = harness::alloc::snapshot();
    if opts.stats {
        let c = &analysis.stats.cache;
        let p = &analysis.stats.prefilter;
        eprintln!(
            "cache: {} hits / {} lookups ({} inserts); \
             canon: {} full, {} delta; \
             checkpoints: {} resumed, {} rebuilt; \
             prefilter: {} skipped of {} tested (gcd {}, range {}, symbolic {})",
            c.hits,
            c.lookups(),
            c.inserts,
            c.full_canons,
            c.delta_canons,
            c.checkpoint_resumes,
            c.checkpoint_rebuilds,
            p.skipped(),
            p.tested(),
            p.gcd,
            p.range,
            p.symbolic_range
        );
        eprintln!(
            "alloc: {} allocations during analysis ({} live blocks, peak {} bytes)",
            alloc_after.allocs - alloc_before.allocs,
            (alloc_after.allocs as i64 - alloc_after.deallocs as i64)
                - (alloc_before.allocs as i64 - alloc_before.deallocs as i64),
            alloc_after.peak_bytes
        );
        let r = omega::row_store_stats();
        eprintln!(
            "rows: {} live of {} built ({} dead entries across {} shards); \
             {} interns ({} shared, {} re-minted); {} sweeps removed {}",
            r.live,
            r.built,
            r.dead,
            r.shards.len(),
            r.interns,
            r.shared,
            r.reminted,
            r.sweeps,
            r.swept
        );
    }

    if opts.parallelize {
        // The same rendering path the corpus sections and the server
        // `parallelize` op use, so all three are byte-identical.
        let graph = depend::DepGraph::new(&info, &analysis);
        print!("{}", depend::render_parallelize_report(&program, &graph));
        return ExitCode::SUCCESS;
    }
    if opts.json {
        let graph = depend::DepGraph::new(&info, &analysis);
        print!("{}", depend::report::to_json(&graph));
        return ExitCode::SUCCESS;
    }
    if opts.dot {
        let dot_opts = depend::dot::DotOptions {
            antis: opts.all,
            outputs: opts.all,
            dead: true,
        };
        let graph = depend::DepGraph::new(&info, &analysis);
        print!("{}", depend::dot::to_dot(&graph, &dot_opts));
        return ExitCode::SUCCESS;
    }

    // The same rendering path the server uses, so a `--serve` response
    // is byte-identical to this one-shot output.
    let view = ReportView {
        all: opts.all,
        signs: opts.signs,
        parallel: opts.parallel,
    };
    print!("{}", render_text_report(&info, &analysis, &view));
    ExitCode::SUCCESS
}
