//! `tinydep` — command-line dependence analyzer, in the spirit of the
//! augmented `tiny` tool the paper distributes.
//!
//! ```text
//! USAGE: tinydep [OPTIONS] <FILE | corpus:NAME | ->
//!
//! OPTIONS:
//!   --standard      standard analysis only (no kills/covers/refinement)
//!   --fortran       parse the input as fixed-form FORTRAN (also inferred
//!                   from a .f/.f77/.for extension)
//!   --all           also print anti and output dependences
//!   --parallel      report loop parallelism and privatization
//!   --storage-kills also run kill analysis on output dependences
//!   --dot           emit the dependence graph in Graphviz DOT format
//!   --json          emit all dependences as JSON
//!   --signs         print partially compressed direction-vector sets
//!                   (the paper's §2.1.1) for each live flow dependence
//!   --threads=N     analyze dependence pairs on N worker threads
//!                   (0 = one per core; the output is identical at
//!                   every setting)
//!   --no-cache      disable the canonical-problem memo cache
//!   --cache-file=PATH
//!                   persist the memo cache: load it from PATH before the
//!                   analysis (ignored when missing/corrupt/stale) and
//!                   save it back after, so re-analyzing the same program
//!                   is served from cache. The report is byte-identical
//!                   either way.
//!   --stats         print solver-cache, row-store and pre-filter
//!                   counters to stderr after the analysis
//!   --serve         run as a long-lived analysis server on
//!                   stdin/stdout: line-delimited JSON requests in,
//!                   one JSON response per line out, with the solver
//!                   cache and row store kept warm across requests
//!                   (see the `server` module docs for the protocol)
//!   --serve=PATH    the same server on a Unix domain socket at PATH,
//!                   accepting concurrent clients
//!   --list-corpus   list built-in corpus programs and exit
//! ```
//!
//! Examples:
//!
//! ```console
//! $ tinydep corpus:cholsky
//! $ tinydep --parallel corpus:double_buffer
//! $ echo 'for i := 1 to n do a(i) := a(i-1); endfor' | tinydep -
//! ```

use std::io::Read as _;
use std::process::ExitCode;

use depend::{analyze_program, Config};
use omega_repro::server::{render_text_report, ReportView, Server};

/// Count allocations so `--stats` can report them alongside the solver
/// counters.
#[global_allocator]
static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc::new();

/// How `--serve` was requested: over stdio or a Unix domain socket.
enum ServeMode {
    Stdio,
    Socket(std::path::PathBuf),
}

struct Options {
    standard: bool,
    all: bool,
    parallel: bool,
    storage_kills: bool,
    fortran: bool,
    dot: bool,
    json: bool,
    signs: bool,
    threads: usize,
    no_cache: bool,
    cache_file: Option<std::path::PathBuf>,
    stats: bool,
    serve: Option<ServeMode>,
    input: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        standard: false,
        all: false,
        parallel: false,
        storage_kills: false,
        fortran: false,
        dot: false,
        json: false,
        signs: false,
        threads: 1,
        no_cache: false,
        cache_file: None,
        stats: false,
        serve: None,
        input: None,
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--standard" => opts.standard = true,
            "--all" => opts.all = true,
            "--parallel" => opts.parallel = true,
            "--storage-kills" => opts.storage_kills = true,
            "--fortran" => opts.fortran = true,
            "--dot" => opts.dot = true,
            "--signs" => opts.signs = true,
            "--json" => opts.json = true,
            "--no-cache" => opts.no_cache = true,
            "--stats" => opts.stats = true,
            "--serve" => opts.serve = Some(ServeMode::Stdio),
            "--list-corpus" => {
                for e in tiny::corpus::all() {
                    println!("{}", e.name);
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("USAGE: tinydep [--standard] [--all] [--parallel] [--storage-kills] <FILE | corpus:NAME | ->");
                std::process::exit(0);
            }
            other if other.starts_with("--threads=") => {
                opts.threads = other["--threads=".len()..]
                    .parse()
                    .map_err(|_| format!("bad thread count in {other}"))?;
            }
            other if other.starts_with("--serve=") => {
                let path = &other["--serve=".len()..];
                if path.is_empty() {
                    return Err("empty socket path in --serve=".into());
                }
                opts.serve = Some(ServeMode::Socket(path.into()));
            }
            other if other.starts_with("--cache-file=") => {
                let path = &other["--cache-file=".len()..];
                if path.is_empty() {
                    return Err("empty path in --cache-file=".into());
                }
                opts.cache_file = Some(path.into());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}"));
            }
            other => {
                if opts.input.replace(other.to_string()).is_some() {
                    return Err("multiple inputs given".into());
                }
            }
        }
    }
    if opts.serve.is_some() {
        if opts.input.is_some() {
            return Err("--serve takes no input argument (programs arrive as requests)".into());
        }
    } else if opts.input.is_none() {
        return Err("no input given (try --help)".into());
    }
    Ok(opts)
}

fn read_input(input: &str) -> Result<String, String> {
    if input == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else if let Some(name) = input.strip_prefix("corpus:") {
        tiny::corpus::by_name(name)
            .map(|e| e.source.to_string())
            .ok_or_else(|| format!("no corpus program `{name}` (see --list-corpus)"))
    } else {
        std::fs::read_to_string(input).map_err(|e| format!("reading {input}: {e}"))
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tinydep: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(mode) = &opts.serve {
        let server = Server::new(opts.threads, opts.cache_file.clone());
        let served = match mode {
            ServeMode::Stdio => server.run_stdio(),
            #[cfg(unix)]
            ServeMode::Socket(path) => server.run_unix(path),
            #[cfg(not(unix))]
            ServeMode::Socket(_) => {
                eprintln!("tinydep: --serve=PATH needs Unix domain sockets; use --serve");
                return ExitCode::FAILURE;
            }
        };
        if opts.stats {
            eprintln!("server stats: {}", server.stats_json());
        }
        return match served {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("tinydep: serve: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let source = match read_input(opts.input.as_deref().expect("validated")) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tinydep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let input_name = opts.input.as_deref().unwrap_or("");
    let is_fortran = opts.fortran
        || [".f", ".f77", ".for", ".F"]
            .iter()
            .any(|ext| input_name.ends_with(ext));
    let parsed = if is_fortran {
        tiny::fortran::parse(&source)
    } else {
        tiny::Program::parse(&source)
    };
    let program = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tinydep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let info = match tiny::analyze(&program) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("tinydep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = Config {
        storage_kills: opts.storage_kills,
        threads: opts.threads,
        memo_cache: !opts.no_cache,
        cache_file: opts.cache_file.clone(),
        ..if opts.standard {
            Config::standard()
        } else {
            Config::extended()
        }
    };
    let alloc_before = harness::alloc::snapshot();
    let analysis = match analyze_program(&info, &config) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tinydep: analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let alloc_after = harness::alloc::snapshot();
    if opts.stats {
        let c = &analysis.stats.cache;
        let p = &analysis.stats.prefilter;
        eprintln!(
            "cache: {} hits / {} lookups ({} inserts); \
             canon: {} full, {} delta; \
             prefilter: {} skipped of {} tested (gcd {}, range {}, symbolic {})",
            c.hits,
            c.lookups(),
            c.inserts,
            c.full_canons,
            c.delta_canons,
            p.skipped(),
            p.tested(),
            p.gcd,
            p.range,
            p.symbolic_range
        );
        eprintln!(
            "alloc: {} allocations during analysis ({} live blocks, peak {} bytes)",
            alloc_after.allocs - alloc_before.allocs,
            (alloc_after.allocs as i64 - alloc_after.deallocs as i64)
                - (alloc_before.allocs as i64 - alloc_before.deallocs as i64),
            alloc_after.peak_bytes
        );
        let r = omega::row_store_stats();
        eprintln!(
            "rows: {} live of {} built ({} dead entries across {} shards); \
             {} interns ({} shared, {} re-minted); {} sweeps removed {}",
            r.live,
            r.built,
            r.dead,
            r.shards.len(),
            r.interns,
            r.shared,
            r.reminted,
            r.sweeps,
            r.swept
        );
    }

    if opts.json {
        print!("{}", depend::report::to_json(&info, &analysis));
        return ExitCode::SUCCESS;
    }
    if opts.dot {
        let dot_opts = depend::dot::DotOptions {
            antis: opts.all,
            outputs: opts.all,
            dead: true,
        };
        print!("{}", depend::dot::to_dot(&info, &analysis, &dot_opts));
        return ExitCode::SUCCESS;
    }

    // The same rendering path the server uses, so a `--serve` response
    // is byte-identical to this one-shot output.
    let view = ReportView {
        all: opts.all,
        signs: opts.signs,
        parallel: opts.parallel,
    };
    print!("{}", render_text_report(&info, &analysis, &view));
    ExitCode::SUCCESS
}
